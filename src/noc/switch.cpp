#include "noc/switch.h"

#include <algorithm>

#include "arch/core.h"
#include "common/check.h"
#include "common/error.h"
#include "common/strings.h"
#include "obs/energy_attr.h"

namespace swallow {

namespace {
// Dynamic network-interface energy per forwarded token.  Calibrated so a
// switch forwarding at on-chip line rate draws roughly the dynamic half of
// Fig. 2's 58 mW network-interface share (see DESIGN.md).
constexpr Joules kNiTokenEnergy = 150e-12;
constexpr std::int64_t kInjectCycles = 3;  // §V.A: three cycles to the network
constexpr std::int64_t kHopCycles = 2;     // per-hop routing decision
constexpr std::int64_t kProcTokenCycles = 1;

// Event-descriptor operand packing for token-carrying switch events
// (kSwitchInject / kSwitchLinkDeliver / kSwitchProcDeliver):
//   a = port (bits 0-7) | corrupt << 8 | is_control << 9 | value << 16
//   b = link sequence number, c = born timestamp.
std::uint32_t pack_token_a(int port, const Token& t, bool corrupt) {
  return (static_cast<std::uint32_t>(port) & 0xFF) |
         (corrupt ? 1u << 8 : 0u) | (t.is_control ? 1u << 9 : 0u) |
         (static_cast<std::uint32_t>(t.value) << 16);
}
Token unpack_token(std::uint32_t a, std::uint64_t c) {
  Token t;
  t.value = static_cast<std::uint8_t>((a >> 16) & 0xFF);
  t.is_control = ((a >> 9) & 1) != 0;
  t.born = static_cast<TimePs>(c);
  return t;
}
}  // namespace

/// TokenOutPort a chanend (or endpoint) emits into: models the injection
/// pipeline between core and switch.
struct Switch::ProcPortImpl : TokenOutPort {
  ProcPortImpl(Switch& s, int idx) : sw(&s), input_idx(idx) {}

  bool can_accept() const override {
    const Input& in = sw->inputs_[static_cast<std::size_t>(input_idx)];
    return in.fifo.size() + static_cast<std::size_t>(in.in_flight) <
           sw->cfg_.buffer_tokens;
  }

  void push(const Token& t) override {
    Input& in = sw->inputs_[static_cast<std::size_t>(input_idx)];
    invariant(can_accept(), "proc port push without acceptance");
    ++in.in_flight;
    // Network ingress: stamp the end-to-end latency clock only while an
    // observability session is attached (the stamp is identity-neutral,
    // see Token::operator==).
    Token stamped = t;
    if (sw->obs_.wants_trace() || sw->obs_.wants_metrics()) {
      stamped.born = sw->sim_.now();
    }
    sw->sim_.after(
        sw->inject_latency_,
        EventDesc{EventKind::kSwitchInject, sw->cfg_.node,
                  pack_token_a(input_idx, stamped, false), 0,
                  static_cast<std::uint64_t>(stamped.born)},
        [s = sw, i = input_idx, stamped] {
          Input& input = s->inputs_[static_cast<std::size_t>(i)];
          --input.in_flight;
          input.fifo.push_back(stamped);
          s->obs_fifo_push(i);
          s->schedule_process(i);
          // The slot freed by the eventual forward is signalled separately;
          // but in-flight moving into the fifo does not free space, so no
          // space notification here.
        });
  }

  void subscribe_space(std::function<void()> cb) override {
    sw->inputs_[static_cast<std::size_t>(input_idx)].space_subs.push_back(
        std::move(cb));
  }

  Switch* sw;
  int input_idx;
};

Switch::Switch(Simulator& sim, EnergyLedger& ledger, Config cfg,
               std::shared_ptr<Router> router)
    : sim_(sim),
      ledger_(ledger),
      cfg_(cfg),
      router_(std::move(router)),
      dir_waiters_(kMaxDirections) {
  require(cfg_.buffer_tokens >= static_cast<std::size_t>(kHeaderTokens) + 1,
          "Switch: buffer must hold a header plus one token");
  cycle_ps_ = period_ps(cfg_.clock_mhz);
  inject_latency_ = kInjectCycles * cycle_ps_;
  hop_latency_ = kHopCycles * cycle_ps_;
  proc_token_time_ = kProcTokenCycles * cycle_ps_;
  dir_groups_.resize(kMaxDirections);
  proc_out_idx_.assign(256, -1);
}

Switch::~Switch() = default;

// ----- observability emission helpers -----

void Switch::obs_fault(int field) {
  if (obs_.track) {
    obs_.track->instant(sim_.now(), TraceCat::kFault,
                        static_cast<std::uint16_t>(field), kTidNode, 1);
  }
}

void Switch::obs_route_open(int input_idx) {
  if (!obs_.track) return;
  const Input& in = inputs_[static_cast<std::size_t>(input_idx)];
  std::int64_t hdr = 0;
  if (in.header.size() == static_cast<std::size_t>(kHeaderTokens)) {
    hdr = header_from_bytes(in.header[0], in.header[1], in.header[2]).node;
  }
  obs_.track->begin(sim_.now(), TraceCat::kRoute, kRouteSubOpen,
                    kTidRouteBase + input_idx, in.output, hdr);
}

void Switch::obs_route_close(int input_idx) {
  if (!obs_.track) return;
  obs_.track->end(sim_.now(), TraceCat::kRoute, kRouteSubOpen,
                  kTidRouteBase + input_idx);
}

void Switch::obs_park(int input_idx, int direction) {
  if (obs_.parks) obs_.parks->add();
  if (obs_.track) {
    obs_.track->instant(sim_.now(), TraceCat::kRoute, kRouteSubPark,
                        kTidRouteBase + input_idx, direction);
  }
}

void Switch::obs_fifo_push(int input_idx) {
  Input& in = inputs_[static_cast<std::size_t>(input_idx)];
  if (obs_.queue_delay_ns) in.entry_times.push_back(sim_.now());
  if (obs_.track) {
    obs_.track->counter(sim_.now(), TraceCat::kQueue,
                        static_cast<std::uint16_t>(input_idx),
                        kTidRouteBase + input_idx,
                        static_cast<double>(in.fifo.size()));
  }
}

void Switch::obs_fifo_pop(Input& in) {
  const int idx = static_cast<int>(&in - inputs_.data());
  if (obs_.queue_delay_ns && !in.entry_times.empty()) {
    const TimePs entered = in.entry_times.front();
    in.entry_times.pop_front();
    obs_.queue_delay_ns->add(
        static_cast<std::uint64_t>((sim_.now() - entered) / kPicosPerNano));
  }
  if (obs_.track) {
    obs_.track->counter(sim_.now(), TraceCat::kQueue,
                        static_cast<std::uint16_t>(idx), kTidRouteBase + idx,
                        static_cast<double>(in.fifo.size()));
  }
}

void Switch::obs_close_spans() {
  if (!obs_.track) return;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    if (inputs_[i].output >= 0) obs_route_close(static_cast<int>(i));
  }
}

void Switch::attach_core(Core& core) {
  require(core_ == nullptr, "Switch: core already attached");
  core_ = &core;
  for (int i = 0; i < kChanendsPerCore; ++i) {
    TokenOutPort* port = attach_endpoint(i, &core.chanend(i));
    core.chanend(i).attach_out_port(port);
  }
}

TokenOutPort* Switch::attach_endpoint(int index, TokenReceiver* receiver) {
  require(index >= 0 && index < 256, "Switch: endpoint index out of range");
  require(proc_out_idx_[static_cast<std::size_t>(index)] < 0,
          "Switch: endpoint index already attached");
  const int port = static_cast<int>(inputs_.size());
  inputs_.emplace_back();
  outputs_.emplace_back();
  Input& in = inputs_.back();
  in.kind = Input::Kind::kProc;
  Output& out = outputs_.back();
  out.kind = Output::Kind::kProc;
  out.receiver = receiver;
  proc_out_idx_[static_cast<std::size_t>(index)] = port;
  receiver->subscribe_drain([this, port] {
    const Output& o = outputs_[static_cast<std::size_t>(port)];
    if (o.bound_input >= 0) schedule_process(o.bound_input);
  });
  proc_ports_.push_back(std::make_unique<ProcPortImpl>(*this, port));
  return proc_ports_.back().get();
}

int Switch::add_link_port(int direction) {
  require(direction >= 0 && direction < kMaxDirections,
          "Switch: bad link direction");
  const int port = static_cast<int>(inputs_.size());
  inputs_.emplace_back();
  outputs_.emplace_back();
  inputs_.back().kind = Input::Kind::kLink;
  Output& out = outputs_.back();
  out.kind = Output::Kind::kLink;
  out.direction = direction;
  dir_groups_[static_cast<std::size_t>(direction)].push_back(port);
  return port;
}

void Switch::connect_link(int my_port, Switch& peer, int peer_port,
                          LinkClass cls, MegabitsPerSecond rate_mbps,
                          TimePs wire_latency, double cable_length_cm) {
  Output& out = outputs_.at(static_cast<std::size_t>(my_port));
  require(out.kind == Output::Kind::kLink && out.peer == nullptr,
          "Switch: port is not an unconnected link port");
  out.peer = &peer;
  out.peer_port = peer_port;
  out.cls = cls;
  out.rate = rate_mbps;
  out.wire_latency = wire_latency;
  out.cable_cm = cable_length_cm;
  out.credits = static_cast<int>(peer.cfg_.buffer_tokens);

  Input& peer_in = peer.inputs_.at(static_cast<std::size_t>(peer_port));
  require(peer_in.kind == Input::Kind::kLink && peer_in.peer == nullptr,
          "Switch: peer port is not an unconnected link port");
  peer_in.peer = this;
  peer_in.peer_output = my_port;
  peer_in.credit_latency = wire_latency;
}

TimePs Switch::token_time(const Output& out) const {
  return transfer_time_ps(kBitsPerToken, out.rate);
}

std::vector<Switch::OpenRoute> Switch::open_routes(TimePs now) const {
  std::vector<OpenRoute> out;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    const Input& in = inputs_[i];
    if (in.output >= 0) {
      const Output& o = outputs_[static_cast<std::size_t>(in.output)];
      OpenRoute r;
      r.node = cfg_.node;
      r.input = static_cast<int>(i);
      r.output = in.output;
      r.to_link = o.kind == Output::Kind::kLink;
      r.held_for = now - in.route_opened_at;
      r.queued_tokens = in.fifo.size();
      out.push_back(r);
    } else if (in.waiting_output) {
      OpenRoute r;
      r.node = cfg_.node;
      r.input = static_cast<int>(i);
      r.parked = true;
      r.queued_tokens = in.fifo.size();
      out.push_back(r);
    }
  }
  return out;
}

std::string Switch::open_routes_summary(TimePs now) const {
  std::string out;
  for (const OpenRoute& r : open_routes(now)) {
    if (r.parked) {
      out += strprintf("  node %04x: input %d parked waiting for a free "
                       "output (%zu tokens queued)\n",
                       cfg_.node, r.input, r.queued_tokens);
    } else {
      out += strprintf(
          "  node %04x: input %d -> output %d (%s) held %.0f ns, "
          "%zu tokens queued\n",
          cfg_.node, r.input, r.output, r.to_link ? "link" : "endpoint",
          to_nanoseconds(r.held_for), r.queued_tokens);
    }
  }
  return out;
}

std::vector<Switch::LinkPortInfo> Switch::link_ports() const {
  std::vector<LinkPortInfo> out;
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    const Output& o = outputs_[i];
    if (o.kind != Output::Kind::kLink || o.peer == nullptr) continue;
    LinkPortInfo info;
    info.port = static_cast<int>(i);
    info.direction = o.direction;
    info.peer = o.peer->node_id();
    info.peer_port = o.peer_port;
    info.cls = o.cls;
    info.up = o.link_up;
    info.dead = o.dead;
    info.reliable = o.reliable;
    out.push_back(info);
  }
  return out;
}

void Switch::set_link_reliable(int port, bool reliable) {
  Output& out = outputs_.at(static_cast<std::size_t>(port));
  require(out.kind == Output::Kind::kLink && out.peer != nullptr,
          "Switch: set_link_reliable on a non-link port");
  require(out.tx_seq == 0, "Switch: cannot change reliability mid-stream");
  out.reliable = reliable;
  Input& peer_in =
      out.peer->inputs_.at(static_cast<std::size_t>(out.peer_port));
  peer_in.reliable = reliable;
}

void Switch::set_link_crossing(int port, DomainPost* to_peer) {
  Output& out = outputs_.at(static_cast<std::size_t>(port));
  require(out.kind == Output::Kind::kLink && out.peer != nullptr,
          "Switch: set_link_crossing on a non-link port");
  out.post_fwd = to_peer;
  inputs_.at(static_cast<std::size_t>(port)).post_back = to_peer;
}

void Switch::set_links_up(int direction, bool up) {
  for (int oidx : dir_groups_.at(static_cast<std::size_t>(direction))) {
    outputs_[static_cast<std::size_t>(oidx)].link_up = up;
  }
}

void Switch::stall_inputs_until(TimePs when) {
  stalled_until_ = std::max(stalled_until_, when);
}

int Switch::reresolve_parked(int direction) {
  auto& queue = dir_waiters_.at(static_cast<std::size_t>(direction));
  if (queue.empty()) return 0;
  std::deque<int> parked;
  parked.swap(queue);
  int rescued = 0;
  for (int input_idx : parked) {
    Input& in = inputs_[static_cast<std::size_t>(input_idx)];
    in.waiting_output = false;
    if (resolve_route(input_idx)) {
      ++rescued;
      schedule_process(input_idx);
    }
  }
  return rescued;
}

int Switch::link_count(LinkClass cls) const {
  int n = 0;
  for (const Output& out : outputs_) {
    n += out.kind == Output::Kind::kLink && out.peer != nullptr &&
         out.cls == cls;
  }
  return n;
}

Watts Switch::instantaneous_link_power(TimePs now) const {
  Watts p = 0;
  for (const Output& out : outputs_) {
    if (out.kind == Output::Kind::kLink && out.peer != nullptr &&
        out.busy_until > now) {
      p += link_energy_per_bit(out.cls, out.cable_cm) * out.rate * 1e6;
    }
  }
  return p;
}

void Switch::deliver_link_token(int port, const Token& t, std::uint64_t seq,
                                bool corrupt) {
  Input& in = inputs_.at(static_cast<std::size_t>(port));
  ++wire_tokens_rx_;
  if (in.reliable) {
    if (corrupt) {
      // CRC catches the flip; discard and ask for everything from the
      // first missing sequence number.
      ++fault_counters_.crc_rejects;
      obs_fault(2);
      request_retransmit(port);
      return;
    }
    if (seq != in.rel_expect) {
      // Gap: an earlier token was lost or rejected; everything after it
      // is discarded until the go-back-N resend arrives.  seq below the
      // expectation is a duplicate from an over-eager resend — re-ack it
      // so a transmitter that missed the ack converges.
      if (seq > in.rel_expect) {
        request_retransmit(port);
      } else {
        send_link_ack(port);
      }
      return;
    }
    in.nak_outstanding = false;
    ++in.rel_expect;
    // Cumulative ack on acceptance into the fifo (not on consumption):
    // backpressure from a busy consumer must not look like token loss to
    // the transmitter's retry timer.  The ack rides the reverse wire of
    // the full-duplex pair alongside credit returns; its wire cost is
    // part of the kReliableFramingBits overhead.
    send_link_ack(port);
  }
  invariant(in.fifo.size() < cfg_.buffer_tokens,
            "link delivery overran credit window");
  in.fifo.push_back(t);
  SWALLOW_CHECK_PROBE(in.fifo.size() <= cfg_.buffer_tokens,
                      "input fifo exceeds its buffer bound");
  obs_fifo_push(port);
  schedule_process(port);
}

void Switch::request_retransmit(int port) {
  Input& in = inputs_[static_cast<std::size_t>(port)];
  if (in.nak_outstanding || in.peer == nullptr) return;
  in.nak_outstanding = true;
  ++fault_counters_.naks_sent;
  obs_fault(3);
  // The NAK is a real control frame on the reverse wire of the full-duplex
  // pair (our output of the same port index): charge its bits.
  const Output& rev = outputs_[static_cast<std::size_t>(port)];
  if (rev.kind == Output::Kind::kLink && rev.peer != nullptr) {
    // Retry-protocol overhead: attribute next to the retransmissions, not
    // the first-send link bucket.
    if (attr_ != nullptr) {
      attr_->cursor_link(cfg_.node, rev.direction, /*retry=*/true);
    }
    ledger_.add(link_account(rev.cls),
                (kBitsPerToken + kReliableFramingBits) *
                    link_energy_per_bit(rev.cls, rev.cable_cm));
    if (attr_ != nullptr) attr_->cursor_clear();
  }
  Switch* peer = in.peer;
  const int po = in.peer_output;
  const std::uint64_t expect = in.rel_expect;
  const EventDesc desc{EventKind::kSwitchLinkNak, peer->cfg_.node,
                       static_cast<std::uint32_t>(po), expect};
  if (in.post_back != nullptr) {
    in.post_back->post(sim_.now() + in.credit_latency, sim_.now(),
                       sim_.draw_tie(),
                       [peer, po, expect] { peer->on_link_nak(po, expect); },
                       desc);
    return;
  }
  sim_.after(in.credit_latency, desc,
             [peer, po, expect] { peer->on_link_nak(po, expect); });
}

void Switch::send_link_ack(int port) {
  Input& in = inputs_[static_cast<std::size_t>(port)];
  if (in.peer == nullptr) return;
  Switch* peer = in.peer;
  const int po = in.peer_output;
  const std::uint64_t cum = in.rel_expect;
  const EventDesc desc{EventKind::kSwitchLinkAck, peer->cfg_.node,
                       static_cast<std::uint32_t>(po), cum};
  if (in.post_back != nullptr) {
    in.post_back->post(sim_.now() + in.credit_latency, sim_.now(),
                       sim_.draw_tie(),
                       [peer, po, cum] { peer->on_link_ack(po, cum); }, desc);
    return;
  }
  sim_.after(in.credit_latency, desc,
             [peer, po, cum] { peer->on_link_ack(po, cum); });
}

void Switch::on_link_ack(int output_idx, std::uint64_t cum_seq) {
  Output& out = outputs_.at(static_cast<std::size_t>(output_idx));
  if (!out.reliable || out.dead) return;
  bool progress = false;
  while (out.rel_base < cum_seq && !out.replay.empty()) {
    out.replay.pop_front();
    ++out.rel_base;
    progress = true;
  }
  if (!progress) return;
  out.backoff_level = 0;  // forward progress resets the backoff
  if (out.replay.empty()) {
    ++out.timer_gen;  // nothing outstanding: disarm the retry timer
    out.timer_armed = false;
  } else {
    arm_retry_timer(output_idx);
  }
}

void Switch::on_link_nak(int output_idx, std::uint64_t expect_seq) {
  Output& out = outputs_.at(static_cast<std::size_t>(output_idx));
  ++fault_counters_.naks_received;
  obs_fault(4);
  if (!out.reliable || out.dead) return;
  const auto floor = static_cast<std::int64_t>(
      std::max(expect_seq, out.rel_base));
  if (out.resend_cursor >= 0) {
    // Already resending; rewind if the receiver is missing older tokens.
    out.resend_cursor = std::min(out.resend_cursor, floor);
    return;
  }
  if (out.backoff_level > cfg_.max_retry_rounds) {
    mark_link_dead(output_idx);
    return;
  }
  const TimePs delay = backoff_delay(out);
  if (obs_.backoff_ns) {
    obs_.backoff_ns->add(static_cast<std::uint64_t>(delay / kPicosPerNano));
  }
  ++out.backoff_level;
  out.resend_cursor = floor;
  const std::uint64_t gen = ++out.resend_gen;
  sim_.after(delay,
             EventDesc{EventKind::kSwitchResendStep, cfg_.node,
                       static_cast<std::uint32_t>(output_idx), gen},
             [this, output_idx, gen] { resend_step(output_idx, gen); });
}

void Switch::on_credit(int output_idx) {
  Output& out = outputs_.at(static_cast<std::size_t>(output_idx));
  ++out.credits;
  invariant(out.credits <= static_cast<int>(
                               out.peer ? out.peer->cfg_.buffer_tokens : 0),
            "credit overflow");
  if (out.bound_input >= 0) schedule_process(out.bound_input);
}

void Switch::schedule_process(int input_idx, TimePs when) {
  Input& in = inputs_[static_cast<std::size_t>(input_idx)];
  if (in.process_scheduled) return;
  in.process_scheduled = true;
  const TimePs at = std::max(when, sim_.now());
  sim_.at(at,
          EventDesc{EventKind::kSwitchProcess, cfg_.node,
                    static_cast<std::uint32_t>(input_idx)},
          [this, input_idx] { process_input(input_idx); });
}

void Switch::consume_from_fifo(Input& in) {
  in.fifo.pop_front();
  obs_fifo_pop(in);
  if (in.kind == Input::Kind::kLink) {
    if (in.peer != nullptr) {
      Switch* peer = in.peer;
      const int po = in.peer_output;
      const EventDesc desc{EventKind::kSwitchCredit, peer->cfg_.node,
                           static_cast<std::uint32_t>(po)};
      if (in.post_back != nullptr) {
        in.post_back->post(sim_.now() + in.credit_latency, sim_.now(),
                           sim_.draw_tie(),
                           [peer, po] { peer->on_credit(po); }, desc);
      } else {
        sim_.after(in.credit_latency, desc,
                   [peer, po] { peer->on_credit(po); });
      }
    }
  } else {
    // A fifo slot freed: tell the producing chanend.
    for (const auto& cb : in.space_subs) cb();
  }
}

bool Switch::try_bind_direction(int input_idx, int direction) {
  for (int oidx : dir_groups_[static_cast<std::size_t>(direction)]) {
    Output& out = outputs_[static_cast<std::size_t>(oidx)];
    if (out.peer != nullptr && !out.dead && out.bound_input < 0) {
      out.bound_input = input_idx;
      inputs_[static_cast<std::size_t>(input_idx)].output = oidx;
      return true;
    }
  }
  return false;
}

bool Switch::resolve_route(int input_idx) {
  Input& in = inputs_[static_cast<std::size_t>(input_idx)];
  const HeaderDest dest =
      header_from_bytes(in.header[0], in.header[1], in.header[2]);

  if (dest.node == cfg_.node) {
    const int oidx = dest.chanend < proc_out_idx_.size()
                         ? proc_out_idx_[dest.chanend]
                         : -1;
    if (oidx < 0) {
      in.output = kSink;
      ++packets_sunk_;
      return true;
    }
    Output& out = outputs_[static_cast<std::size_t>(oidx)];
    if (out.bound_input >= 0) {
      out.waiters.push_back(input_idx);
      in.waiting_output = true;
      obs_park(input_idx, -1);
      return false;
    }
    out.bound_input = input_idx;
    in.output = oidx;
    in.route_opened_at = sim_.now();
    ++packets_routed_;
    obs_route_open(input_idx);
    return true;  // header is consumed, not re-emitted, at the endpoint
  }

  const int dir = router_ ? router_->route(cfg_.node, dest.node)
                          : kDirUnroutable;
  if (dir < 0 || dir >= kMaxDirections ||
      dir_groups_[static_cast<std::size_t>(dir)].empty()) {
    in.output = kSink;
    ++packets_sunk_;
    return true;
  }
  if (!try_bind_direction(input_idx, dir)) {
    dir_waiters_[static_cast<std::size_t>(dir)].push_back(input_idx);
    in.waiting_output = true;
    obs_park(input_idx, dir);
    return false;
  }
  // Re-emit the header towards the next hop.
  for (std::uint8_t b : in.header) in.pending_out.push_back(Token::data(b));
  in.route_opened_at = sim_.now();
  ++packets_routed_;
  obs_route_open(input_idx);
  return true;
}

void Switch::unbind(int input_idx) {
  Input& in = inputs_[static_cast<std::size_t>(input_idx)];
  const int oidx = in.output;
  route_hold_ns_.add(to_nanoseconds(sim_.now() - in.route_opened_at));
  obs_route_close(input_idx);
  in.output = -1;
  in.header.clear();
  Output& out = outputs_[static_cast<std::size_t>(oidx)];
  out.bound_input = -1;

  // Hand the output to the next waiting packet, if any.
  int next = -1;
  if (out.kind == Output::Kind::kProc) {
    if (!out.waiters.empty()) {
      next = out.waiters.front();
      out.waiters.pop_front();
      out.bound_input = next;
      Input& win = inputs_[static_cast<std::size_t>(next)];
      win.output = oidx;
      win.waiting_output = false;
      win.route_opened_at = sim_.now();
      ++packets_routed_;
      obs_route_open(next);
    }
  } else if (!out.dead) {
    auto& queue = dir_waiters_[static_cast<std::size_t>(out.direction)];
    if (!queue.empty()) {
      next = queue.front();
      queue.pop_front();
      out.bound_input = next;
      Input& win = inputs_[static_cast<std::size_t>(next)];
      win.output = oidx;
      win.waiting_output = false;
      win.route_opened_at = sim_.now();
      for (std::uint8_t b : win.header) win.pending_out.push_back(Token::data(b));
      ++packets_routed_;
      obs_route_open(next);
    }
  }
  if (next >= 0) schedule_process(next);
}

int Switch::link_bits_per_token(const Output& out) const {
  return kBitsPerToken + (out.reliable ? kReliableFramingBits : 0);
}

TimePs Switch::backoff_delay(const Output& out) const {
  if (out.backoff_level == 0) return 0;
  const int e = std::min(out.backoff_level, cfg_.max_backoff_doublings);
  return cfg_.retry_timeout << e;  // bounded exponential backoff
}

void Switch::arm_retry_timer(int output_idx) {
  Output& out = outputs_[static_cast<std::size_t>(output_idx)];
  const std::uint64_t gen = ++out.timer_gen;
  out.timer_armed = true;
  sim_.after(cfg_.retry_timeout + backoff_delay(out),
             EventDesc{EventKind::kSwitchRetryTimeout, cfg_.node,
                       static_cast<std::uint32_t>(output_idx), gen},
             [this, output_idx, gen] { on_retry_timeout(output_idx, gen); });
}

void Switch::on_retry_timeout(int output_idx, std::uint64_t gen) {
  Output& out = outputs_[static_cast<std::size_t>(output_idx)];
  if (gen != out.timer_gen) return;  // superseded or disarmed
  out.timer_armed = false;
  if (out.dead || !out.reliable || out.replay.empty()) return;
  ++fault_counters_.retry_timeouts;
  obs_fault(6);
  if (obs_.backoff_ns) {
    obs_.backoff_ns->add(
        static_cast<std::uint64_t>(backoff_delay(out) / kPicosPerNano));
  }
  ++out.backoff_level;
  if (out.backoff_level > cfg_.max_retry_rounds) {
    mark_link_dead(output_idx);
    return;
  }
  // No ack and no NAK within the window: go back to the oldest unacked
  // token (covers total outages, where the receiver saw nothing at all).
  out.resend_cursor = static_cast<std::int64_t>(out.rel_base);
  const std::uint64_t rgen = ++out.resend_gen;
  sim_.after(0,
             EventDesc{EventKind::kSwitchResendStep, cfg_.node,
                       static_cast<std::uint32_t>(output_idx), rgen},
             [this, output_idx, rgen] { resend_step(output_idx, rgen); });
  arm_retry_timer(output_idx);
}

void Switch::resend_step(int output_idx, std::uint64_t gen) {
  Output& out = outputs_[static_cast<std::size_t>(output_idx)];
  if (gen != out.resend_gen) return;  // superseded by a newer resend round
  if (out.dead || !out.reliable) {
    out.resend_cursor = -1;
    return;
  }
  if (out.resend_cursor < static_cast<std::int64_t>(out.rel_base)) {
    out.resend_cursor = static_cast<std::int64_t>(out.rel_base);  // acked
  }
  if (out.resend_cursor >= static_cast<std::int64_t>(out.tx_seq)) {
    // Caught up: resume normal transmission from the bound input.
    out.resend_cursor = -1;
    if (out.bound_input >= 0) schedule_process(out.bound_input);
    return;
  }
  const TimePs now = sim_.now();
  const EventDesc step_desc{EventKind::kSwitchResendStep, cfg_.node,
                            static_cast<std::uint32_t>(output_idx), gen};
  if (out.busy_until > now) {
    sim_.at(out.busy_until, step_desc,
            [this, output_idx, gen] { resend_step(output_idx, gen); });
    return;
  }
  const Token t = out.replay[static_cast<std::size_t>(
      out.resend_cursor - static_cast<std::int64_t>(out.rel_base))];
  const auto seq = static_cast<std::uint64_t>(out.resend_cursor);
  ++out.resend_cursor;
  ++fault_counters_.retransmissions;
  obs_fault(5);
  resending_ = true;  // wire charge goes to the link.retry bucket
  transmit_on_link(out, t, seq);  // charges the wire like a first send
  resending_ = false;
  sim_.at(out.busy_until, step_desc,
          [this, output_idx, gen] { resend_step(output_idx, gen); });
}

void Switch::mark_link_dead(int output_idx) {
  Output& out = outputs_[static_cast<std::size_t>(output_idx)];
  if (out.dead) return;
  out.dead = true;
  ++fault_counters_.links_marked_dead;
  obs_fault(7);
  out.resend_cursor = -1;
  ++out.resend_gen;
  ++out.timer_gen;
  out.timer_armed = false;
  out.replay.clear();
  // Wake the bound input so it can drain the doomed remainder of its
  // packet instead of wedging the switch.
  if (out.bound_input >= 0) schedule_process(out.bound_input);
  if (on_link_dead_) on_link_dead_(*this, output_idx, out.direction);
}

void Switch::transmit_on_link(Output& out, const Token& t, std::uint64_t seq) {
  const TimePs now = sim_.now();
  ++wire_tokens_tx_;
  const int bits = link_bits_per_token(out);
  const TimePs ser = transfer_time_ps(bits, out.rate);
  out.busy_until = now + ser;
  const TimePs arrival = now + hop_latency_ + ser + out.wire_latency;
  const Joules wire_energy = bits * link_energy_per_bit(out.cls, out.cable_cm);
  if (attr_ != nullptr) attr_->cursor_link(cfg_.node, out.direction, resending_);
  ledger_.add(link_account(out.cls), wire_energy);
  if (attr_ != nullptr) attr_->cursor_clear();
  ++link_tokens_sent_[static_cast<std::size_t>(out.cls)];
  link_busy_time_[static_cast<std::size_t>(out.cls)] += ser;
  if (obs_.track) {
    obs_.track->instant(now, TraceCat::kLink, kLinkSubToken,
                        kTidLinkBase + out.direction, bits, out.direction,
                        to_picojoules(wire_energy));
  }
  // Fault injection on the wire (applies to retransmissions too: a flaky
  // cable does not care whether a token is a retry).
  Token wire = t;
  bool corrupt = false;
  if (fault_hook_) {
    switch (fault_hook_(cfg_.node, out.direction, wire, now)) {
      case LinkFaultAction::kNone:
        break;
      case LinkFaultAction::kCorrupt:
        corrupt = true;
        ++fault_counters_.tokens_corrupted;
        obs_fault(0);
        break;
      case LinkFaultAction::kDrop:
        ++fault_counters_.tokens_dropped;
        ++wire_tokens_dropped_;
        obs_fault(1);
        return;  // lost on the wire; the driver still burned the energy
    }
  }
  if (!out.link_up) {
    ++fault_counters_.tokens_dropped;
    ++wire_tokens_dropped_;
    obs_fault(1);
    return;
  }
  Switch* peer = out.peer;
  const int pport = out.peer_port;
  const EventDesc desc{EventKind::kSwitchLinkDeliver, peer->cfg_.node,
                       pack_token_a(pport, wire, corrupt), seq,
                       static_cast<std::uint64_t>(wire.born)};
  if (out.post_fwd != nullptr) {
    out.post_fwd->post(arrival, now, sim_.draw_tie(),
                       [peer, pport, wire, seq, corrupt] {
                         peer->deliver_link_token(pport, wire, seq, corrupt);
                       },
                       desc);
    return;
  }
  sim_.at(arrival, desc, [peer, pport, wire, seq, corrupt] {
    peer->deliver_link_token(pport, wire, seq, corrupt);
  });
}

void Switch::send_token(int input_idx, Output& out, const Token& t) {
  ++tokens_forwarded_;
  if (attr_ != nullptr) attr_->cursor_ni(cfg_.node);
  ledger_.add(EnergyAccount::kNetworkInterface, kNiTokenEnergy);
  if (attr_ != nullptr) attr_->cursor_clear();
  const TimePs now = sim_.now();
  if (out.kind == Output::Kind::kLink) {
    SWALLOW_CHECK_PROBE(out.credits > 0, "link transmit without credit");
    --out.credits;
    std::uint64_t seq = 0;
    if (out.reliable) {
      seq = out.tx_seq++;
      out.replay.push_back(t);
      SWALLOW_CHECK_PROBE(out.replay.size() <= cfg_.buffer_tokens,
                          "replay window exceeds the credit window");
      if (!out.timer_armed) {
        arm_retry_timer(static_cast<int>(&out - outputs_.data()));
      }
    }
    transmit_on_link(out, t, seq);
  } else {
    out.busy_until = now + proc_token_time_;
    ++out.deliveries_in_flight;
    TokenReceiver* recv = out.receiver;
    Output* outp = &out;
    const int oidx = static_cast<int>(&out - outputs_.data());
    sim_.at(out.busy_until,
            EventDesc{EventKind::kSwitchProcDeliver, cfg_.node,
                      pack_token_a(oidx, t, false), 0,
                      static_cast<std::uint64_t>(t.born)},
            [this, recv, outp, t] {
              --outp->deliveries_in_flight;
              // PAUSE closes routes inside the network but is not delivered
              // to the endpoint (§V.B).
              if (!t.is_pause()) {
                // End-to-end token latency: ingress stamp (origin proc
                // port, possibly several hops and domains away) to endpoint
                // delivery.
                if (t.born > 0) {
                  if (obs_.token_latency_ns) {
                    obs_.token_latency_ns->add(static_cast<std::uint64_t>(
                        (sim_.now() - t.born) / kPicosPerNano));
                  }
                  if (obs_.tokens_delivered) obs_.tokens_delivered->add();
                }
                recv->receive(t);
              }
            });
  }
  (void)input_idx;
}

void Switch::process_input(int input_idx) {
  Input& in = inputs_[static_cast<std::size_t>(input_idx)];
  in.process_scheduled = false;
  if (stalled_until_ > sim_.now()) {
    // Injected switch-buffer stall: freeze the crossbar until it lifts.
    schedule_process(input_idx, stalled_until_);
    return;
  }

  while (true) {
    if (in.output == -1) {
      if (in.waiting_output) return;  // parked until an output frees
      if (in.fifo.empty()) return;
      const Token t = in.fifo.front();
      if (t.is_control) {
        // Stray control token with no open route: consume it (an END
        // closing an already-closed route is legal after a PAUSE).
        consume_from_fifo(in);
        in.header.clear();
        continue;
      }
      in.header.push_back(t.value);
      consume_from_fifo(in);
      if (in.header.size() == static_cast<std::size_t>(kHeaderTokens)) {
        if (!resolve_route(input_idx)) return;
      }
      continue;
    }

    if (in.output == kSink) {
      if (in.fifo.empty()) return;
      const Token t = in.fifo.front();
      consume_from_fifo(in);
      if (t.closes_route()) {
        in.output = -1;
        in.header.clear();
      }
      continue;
    }

    Output& out = outputs_[static_cast<std::size_t>(in.output)];
    if (out.kind == Output::Kind::kLink && out.dead) {
      // Permanent link failure: consume and discard the rest of the packet
      // so the input (and everything upstream of it) does not wedge.
      const bool fp = !in.pending_out.empty();
      if (!fp && in.fifo.empty()) return;
      const Token d = fp ? in.pending_out.front() : in.fifo.front();
      if (fp) {
        in.pending_out.pop_front();
      } else {
        consume_from_fifo(in);
      }
      ++fault_counters_.tokens_discarded_dead;
      obs_fault(8);
      if (!fp && d.closes_route()) unbind(input_idx);
      continue;
    }
    const TimePs now = sim_.now();
    if (out.busy_until > now) {
      schedule_process(input_idx, out.busy_until);
      return;
    }
    const bool from_pending = !in.pending_out.empty();
    if (!from_pending && in.fifo.empty()) return;
    const Token t = from_pending ? in.pending_out.front() : in.fifo.front();

    if (out.kind == Output::Kind::kLink) {
      // While a go-back-N resend is replaying, new tokens must wait so the
      // wire carries sequence numbers in order.  resend_step reschedules us.
      if (out.reliable && out.resend_cursor >= 0) return;
      if (out.credits <= 0) return;  // resumed by on_credit
    } else {
      if (out.receiver->free_space() <=
          static_cast<std::size_t>(out.deliveries_in_flight)) {
        return;  // resumed by the receiver's drain notification
      }
    }

    send_token(input_idx, out, t);
    if (from_pending) {
      in.pending_out.pop_front();
    } else {
      consume_from_fifo(in);
      if (t.closes_route()) unbind(input_idx);
    }
  }
}

// ---------------------------------------------------------------- snapshot

void Switch::save_state(StateWriter& w) const {
  w.seq(inputs_, [&](const Input& in) {
    w.seq(in.fifo, [&](const Token& t) { save_token(w, t); });
    w.u32(static_cast<std::uint32_t>(in.in_flight));
    w.seq(in.header, [&](std::uint8_t b) { w.u8(b); });
    w.seq(in.pending_out, [&](const Token& t) { save_token(w, t); });
    w.u32(static_cast<std::uint32_t>(in.output));
    w.i64(in.route_opened_at);
    w.b(in.waiting_output);
    w.b(in.process_scheduled);
    w.u64(in.rel_expect);
    w.b(in.nak_outstanding);
    w.seq(in.entry_times, [&](TimePs t) { w.i64(t); });
  });
  w.seq(outputs_, [&](const Output& out) {
    w.u32(static_cast<std::uint32_t>(out.credits));
    w.b(out.link_up);
    w.b(out.dead);
    w.u64(out.tx_seq);
    w.u64(out.rel_base);
    w.seq(out.replay, [&](const Token& t) { save_token(w, t); });
    w.i64(out.resend_cursor);
    w.u64(out.resend_gen);
    w.u64(out.timer_gen);
    w.b(out.timer_armed);
    w.u32(static_cast<std::uint32_t>(out.backoff_level));
    w.u32(static_cast<std::uint32_t>(out.deliveries_in_flight));
    w.seq(out.waiters, [&](int i) { w.u32(static_cast<std::uint32_t>(i)); });
    w.i64(out.busy_until);
    w.u32(static_cast<std::uint32_t>(out.bound_input));
  });
  w.seq(dir_waiters_, [&](const std::deque<int>& q) {
    w.seq(q, [&](int i) { w.u32(static_cast<std::uint32_t>(i)); });
  });
  w.u64(tokens_forwarded_);
  w.u64(packets_routed_);
  w.u64(packets_sunk_);
  w.u64(wire_tokens_tx_);
  w.u64(wire_tokens_rx_);
  w.u64(wire_tokens_dropped_);
  for (std::uint64_t n : link_tokens_sent_) w.u64(n);
  for (TimePs t : link_busy_time_) w.i64(t);
  route_hold_ns_.save_state(w);
  fault_counters_.save_state(w);
  w.i64(stalled_until_);
}

void Switch::load_state(StateReader& r) {
  r.seq_exactly(inputs_.size(), "switch inputs", [&](std::uint32_t i) {
    Input& in = inputs_[i];
    in.fifo.clear();
    r.seq([&](std::uint32_t) { in.fifo.push_back(load_token(r)); });
    in.in_flight = static_cast<std::int32_t>(r.u32());
    in.header.clear();
    r.seq([&](std::uint32_t) { in.header.push_back(r.u8()); });
    in.pending_out.clear();
    r.seq([&](std::uint32_t) { in.pending_out.push_back(load_token(r)); });
    in.output = static_cast<std::int32_t>(r.u32());
    in.route_opened_at = r.i64();
    in.waiting_output = r.b();
    in.process_scheduled = r.b();
    in.rel_expect = r.u64();
    in.nak_outstanding = r.b();
    in.entry_times.clear();
    r.seq([&](std::uint32_t) { in.entry_times.push_back(r.i64()); });
  });
  r.seq_exactly(outputs_.size(), "switch outputs", [&](std::uint32_t i) {
    Output& out = outputs_[i];
    out.credits = static_cast<std::int32_t>(r.u32());
    out.link_up = r.b();
    out.dead = r.b();
    out.tx_seq = r.u64();
    out.rel_base = r.u64();
    out.replay.clear();
    r.seq([&](std::uint32_t) { out.replay.push_back(load_token(r)); });
    out.resend_cursor = r.i64();
    out.resend_gen = r.u64();
    out.timer_gen = r.u64();
    out.timer_armed = r.b();
    out.backoff_level = static_cast<std::int32_t>(r.u32());
    out.deliveries_in_flight = static_cast<std::int32_t>(r.u32());
    out.waiters.clear();
    r.seq([&](std::uint32_t) {
      out.waiters.push_back(static_cast<std::int32_t>(r.u32()));
    });
    out.busy_until = r.i64();
    out.bound_input = static_cast<std::int32_t>(r.u32());
  });
  r.seq_exactly(dir_waiters_.size(), "direction waiters",
                [&](std::uint32_t i) {
                  dir_waiters_[i].clear();
                  r.seq([&](std::uint32_t) {
                    dir_waiters_[i].push_back(
                        static_cast<std::int32_t>(r.u32()));
                  });
                });
  tokens_forwarded_ = r.u64();
  packets_routed_ = r.u64();
  packets_sunk_ = r.u64();
  wire_tokens_tx_ = r.u64();
  wire_tokens_rx_ = r.u64();
  wire_tokens_dropped_ = r.u64();
  for (std::uint64_t& n : link_tokens_sent_) n = r.u64();
  for (TimePs& t : link_busy_time_) t = r.i64();
  route_hold_ns_.load_state(r);
  fault_counters_.load_state(r);
  stalled_until_ = r.i64();
}

void Switch::restore_event(const LiveEvent& ev) {
  const std::uint32_t a = ev.desc.a;
  const int port = static_cast<int>(a & 0xFF);
  switch (ev.desc.kind) {
    case EventKind::kSwitchInject: {
      Token t = unpack_token(a, ev.desc.c);
      sim_.inject(ev.time, ev.stamp, ev.tie, ev.desc, [this, port, t] {
        Input& input = inputs_[static_cast<std::size_t>(port)];
        --input.in_flight;
        input.fifo.push_back(t);
        obs_fifo_push(port);
        schedule_process(port);
      });
      return;
    }
    case EventKind::kSwitchProcess:
      sim_.inject(ev.time, ev.stamp, ev.tie, ev.desc,
                  [this, i = static_cast<int>(a)] { process_input(i); });
      return;
    case EventKind::kSwitchLinkNak:
      sim_.inject(ev.time, ev.stamp, ev.tie, ev.desc,
                  [this, i = static_cast<int>(a), expect = ev.desc.b] {
                    on_link_nak(i, expect);
                  });
      return;
    case EventKind::kSwitchLinkAck:
      sim_.inject(ev.time, ev.stamp, ev.tie, ev.desc,
                  [this, i = static_cast<int>(a), cum = ev.desc.b] {
                    on_link_ack(i, cum);
                  });
      return;
    case EventKind::kSwitchCredit:
      sim_.inject(ev.time, ev.stamp, ev.tie, ev.desc,
                  [this, i = static_cast<int>(a)] { on_credit(i); });
      return;
    case EventKind::kSwitchResendStep:
      sim_.inject(ev.time, ev.stamp, ev.tie, ev.desc,
                  [this, i = static_cast<int>(a), gen = ev.desc.b] {
                    resend_step(i, gen);
                  });
      return;
    case EventKind::kSwitchRetryTimeout:
      sim_.inject(ev.time, ev.stamp, ev.tie, ev.desc,
                  [this, i = static_cast<int>(a), gen = ev.desc.b] {
                    on_retry_timeout(i, gen);
                  });
      return;
    case EventKind::kSwitchLinkDeliver: {
      Token t = unpack_token(a, ev.desc.c);
      const bool corrupt = ((a >> 8) & 1) != 0;
      sim_.inject(ev.time, ev.stamp, ev.tie, ev.desc,
                  [this, port, t, seq = ev.desc.b, corrupt] {
                    deliver_link_token(port, t, seq, corrupt);
                  });
      return;
    }
    case EventKind::kSwitchProcDeliver: {
      Token t = unpack_token(a, ev.desc.c);
      sim_.inject(ev.time, ev.stamp, ev.tie, ev.desc, [this, port, t] {
        Output& out = outputs_[static_cast<std::size_t>(port)];
        --out.deliveries_in_flight;
        if (!t.is_pause()) {
          if (t.born > 0) {
            if (obs_.token_latency_ns) {
              obs_.token_latency_ns->add(static_cast<std::uint64_t>(
                  (sim_.now() - t.born) / kPicosPerNano));
            }
            if (obs_.tokens_delivered) obs_.tokens_delivered->add();
          }
          out.receiver->receive(t);
        }
      });
      return;
    }
    default:
      invariant(false, "Switch::restore_event: not a switch event");
  }
}

}  // namespace swallow
