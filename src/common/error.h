// Error handling for the Swallow simulator.
//
// Configuration and usage errors (bad topology, malformed assembly, invalid
// resource use) throw `swallow::Error`; internal invariant violations throw
// `swallow::InternalError`.  Both carry a plain message — the simulator is a
// library, so callers decide how to surface failures.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace swallow {

/// Error caused by invalid input to the library (bad program, bad config).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Violation of an internal invariant; indicates a simulator bug.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

/// Throw Error unless `cond` holds.
inline void require(bool cond, std::string_view msg) {
  if (!cond) throw Error(std::string(msg));
}

/// Throw InternalError unless `cond` holds.
inline void invariant(bool cond, std::string_view msg) {
  if (!cond) throw InternalError(std::string(msg));
}

}  // namespace swallow
