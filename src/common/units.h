// Physical-quantity helpers used across the Swallow simulator.
//
// The simulator keeps a single authoritative notion of time: an integer
// number of picoseconds since simulation start (`TimePs`).  Integer time
// keeps event ordering exactly deterministic, which mirrors the
// time-deterministic execution guarantee of the XS1-L hardware the paper
// builds on.  All other quantities (power, energy, voltage, data volume)
// are doubles in SI units with thin named helpers for the magnitudes the
// paper uses (mW, pJ/bit, Mbit/s, MHz).
#pragma once

#include <cstdint>
#include <limits>

namespace swallow {

/// Simulation time in integer picoseconds.
using TimePs = std::int64_t;

/// Sentinel meaning "never" / "no deadline".
inline constexpr TimePs kTimeNever = std::numeric_limits<TimePs>::max();

inline constexpr TimePs kPicosPerNano = 1'000;
inline constexpr TimePs kPicosPerMicro = 1'000'000;
inline constexpr TimePs kPicosPerMilli = 1'000'000'000;
inline constexpr TimePs kPicosPerSecond = 1'000'000'000'000;

constexpr TimePs nanoseconds(double ns) {
  return static_cast<TimePs>(ns * static_cast<double>(kPicosPerNano));
}
constexpr TimePs microseconds(double us) {
  return static_cast<TimePs>(us * static_cast<double>(kPicosPerMicro));
}
constexpr TimePs milliseconds(double ms) {
  return static_cast<TimePs>(ms * static_cast<double>(kPicosPerMilli));
}
constexpr double to_nanoseconds(TimePs t) {
  return static_cast<double>(t) / static_cast<double>(kPicosPerNano);
}
constexpr double to_microseconds(TimePs t) {
  return static_cast<double>(t) / static_cast<double>(kPicosPerMicro);
}
constexpr double to_seconds(TimePs t) {
  return static_cast<double>(t) / static_cast<double>(kPicosPerSecond);
}

/// Frequency in megahertz (the unit the paper quotes throughout).
using MegaHertz = double;

/// Clock period of a frequency, rounded to integer picoseconds.
/// 500 MHz -> 2000 ps.
constexpr TimePs period_ps(MegaHertz f_mhz) {
  return static_cast<TimePs>(1e6 / f_mhz + 0.5);
}

/// Power in watts and energy in joules; helpers for paper magnitudes.
using Watts = double;
using Joules = double;
using Volts = double;

constexpr Watts milliwatts(double mw) { return mw * 1e-3; }
constexpr double to_milliwatts(Watts w) { return w * 1e3; }
constexpr Joules picojoules(double pj) { return pj * 1e-12; }
constexpr double to_picojoules(Joules j) { return j * 1e12; }
constexpr Joules nanojoules(double nj) { return nj * 1e-9; }
constexpr double to_nanojoules(Joules j) { return j * 1e9; }
constexpr Joules microjoules(double uj) { return uj * 1e-6; }

/// Energy accumulated by a constant power over an integer time span.
constexpr Joules energy_over(Watts p, TimePs span) {
  return p * to_seconds(span);
}

/// Data rates.  The paper quotes link speeds in Mbit/s.
using MegabitsPerSecond = double;

/// Time to serialise `bits` at `rate` Mbit/s, rounded to picoseconds.
constexpr TimePs transfer_time_ps(std::int64_t bits, MegabitsPerSecond rate) {
  return static_cast<TimePs>(static_cast<double>(bits) * 1e6 / rate + 0.5);
}

}  // namespace swallow
