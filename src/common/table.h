// Plain-text table renderer used by the benchmark harnesses to print the
// paper's tables and figure series in a uniform format.
#pragma once

#include <string>
#include <vector>

namespace swallow {

/// Column-aligned text table with optional title and header rule.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row.  Column count is inferred from it.
  void header(std::vector<std::string> cells);

  /// Append a data row; short rows are padded with empty cells.
  void row(std::vector<std::string> cells);

  /// Append a horizontal rule between row groups.
  void rule();

  /// Render with 2-space column gutters.
  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  // Each row is either a cell list or the sentinel "rule" marker.
  struct Row {
    std::vector<std::string> cells;
    bool is_rule = false;
  };
  std::vector<Row> rows_;
};

}  // namespace swallow
