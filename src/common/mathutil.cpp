#include "common/mathutil.h"

namespace swallow {

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  require(xs.size() == ys.size(), "fit_line: mismatched sample counts");
  require(xs.size() >= 2, "fit_line: need at least two points");
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  require(denom != 0.0, "fit_line: degenerate x values");
  LineFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (fit.intercept + fit.slope * xs[i]);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace swallow
