// Binary state serialization primitives for the snapshot subsystem
// (src/snap/, docs/architecture.md §snapshot format).
//
// StateWriter appends little-endian fields to a byte buffer; StateReader
// consumes them with bounds checking and throws a structured SnapError on
// any malformation — restore must refuse a bad snapshot, never crash or
// half-apply it.  Doubles are bit-cast through uint64 so energy totals and
// sampler state round-trip bit-exactly (the keystone identity property).
//
// Components implement `save_state(StateWriter&) const` and
// `load_state(StateReader&)` as mirror-image field lists; the helpers here
// (sequences, strings, arrays) keep those lists short enough to eyeball for
// symmetry.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

namespace swallow {

/// Structured refusal from snapshot validation or restore.  Carries a
/// machine-checkable code alongside the human-readable message so tests and
/// tools can distinguish "file truncated" from "wrong machine".
class SnapError : public std::runtime_error {
 public:
  enum class Code {
    kIoError = 1,         // open/read/write/rename/fsync failure
    kTruncated = 2,       // file shorter than its manifest claims
    kBadMagic = 3,        // not a snapshot file
    kBadVersion = 4,      // format version this build cannot read
    kBadCrc = 5,          // a section's CRC32 does not match its bytes
    kConfigMismatch = 6,  // snapshot taken on a differently configured machine
    kMissingSection = 7,  // manifest lacks a required section
    kUndescribedEvent = 8,  // a pending event has no snapshot descriptor
    kMalformed = 9,         // section decodes to inconsistent state
    kSkewedClocks = 10,     // domains not at one instant (bounded-sync skew)
  };

  SnapError(Code code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  Code code() const { return code_; }
  const char* code_name() const { return code_name(code_); }

  static const char* code_name(Code c) {
    switch (c) {
      case Code::kIoError: return "io-error";
      case Code::kTruncated: return "truncated";
      case Code::kBadMagic: return "bad-magic";
      case Code::kBadVersion: return "bad-version";
      case Code::kBadCrc: return "bad-crc";
      case Code::kConfigMismatch: return "config-mismatch";
      case Code::kMissingSection: return "missing-section";
      case Code::kUndescribedEvent: return "undescribed-event";
      case Code::kMalformed: return "malformed";
      case Code::kSkewedClocks: return "skewed-clocks";
    }
    return "unknown";
  }

 private:
  Code code_;
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib convention) over a byte range.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed = 0);

/// Little-endian append-only byte sink.
class StateWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { le(v); }
  void u32(std::uint32_t v) { le(v); }
  void u64(std::uint64_t v) { le(v); }
  void i64(std::int64_t v) { le(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void bytes(const std::uint8_t* data, std::size_t size) {
    buf_.insert(buf_.end(), data, data + size);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }
  /// Length-prefixed sequence: `fn(elem)` writes each element.
  template <typename Seq, typename Fn>
  void seq(const Seq& s, Fn&& fn) {
    u32(static_cast<std::uint32_t>(s.size()));
    for (const auto& e : s) fn(e);
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a borrowed byte range.
class StateReader {
 public:
  StateReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit StateReader(const std::vector<std::uint8_t>& v)
      : StateReader(v.data(), v.size()) {}

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint16_t u16() { return take<std::uint16_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool b() { return u8() != 0; }
  double f64() { return std::bit_cast<double>(u64()); }

  void bytes(std::uint8_t* out, std::size_t size) {
    need(size);
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  /// Mirror of StateWriter::seq: returns the element count after clearing
  /// and refilling is the caller's job via `fn()` per element.
  template <typename Fn>
  void seq(Fn&& fn) {
    const std::uint32_t n = u32();
    for (std::uint32_t i = 0; i < n; ++i) fn(i);
  }
  /// seq() with an expected count; refuses on mismatch (e.g. a snapshot
  /// from a machine with a different geometry sneaking past the hash).
  template <typename Fn>
  void seq_exactly(std::size_t expect, const char* what, Fn&& fn) {
    const std::uint32_t n = u32();
    if (n != expect) {
      throw SnapError(SnapError::Code::kMalformed,
                      std::string("snapshot: ") + what + " count mismatch");
    }
    for (std::uint32_t i = 0; i < n; ++i) fn(i);
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  template <typename T>
  T take() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }
  void need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw SnapError(SnapError::Code::kTruncated,
                      "snapshot: section ends mid-field");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace swallow
