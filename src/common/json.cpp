#include "common/json.h"

#include <cctype>
#include <cstdlib>

#include "common/error.h"
#include "common/strings.h"

namespace swallow {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    require(pos_ == text_.size(),
            strprintf("json: trailing garbage at offset %zu", pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    throw Error(strprintf("json: %s at offset %zu", what, pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Json v;
        v.type_ = Json::Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        Json v;
        v.type_ = Json::Type::kBool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        Json v;
        v.type_ = Json::Type::kBool;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return Json{};
      }
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json v;
    v.type_ = Json::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json parse_array() {
    expect('[');
    Json v;
    v.type_ = Json::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // \uXXXX: decode the code unit; non-ASCII becomes UTF-8.
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default: fail("bad escape");
        }
        continue;
      }
      out += c;
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      fail("bad number");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
      pos_ = start;
      fail("bad number");
    }
    Json j;
    j.type_ = Json::Type::kNumber;
    j.number_ = v;
    return j;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Json Json::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

bool Json::as_bool() const {
  require(type_ == Type::kBool, "json: not a bool");
  return bool_;
}

double Json::as_number() const {
  require(type_ == Type::kNumber, "json: not a number");
  return number_;
}

const std::string& Json::as_string() const {
  require(type_ == Type::kString, "json: not a string");
  return string_;
}

const std::vector<Json>& Json::as_array() const {
  require(type_ == Type::kArray, "json: not an array");
  return array_;
}

const Json* Json::get(std::string_view key) const {
  require(type_ == Type::kObject, "json: not an object");
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* v = get(key);
  require(v != nullptr, strprintf("json: missing key \"%.*s\"",
                                  static_cast<int>(key.size()), key.data()));
  return *v;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  throw Error("json: size() on non-container");
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  require(type_ == Type::kObject, "json: not an object");
  return object_;
}

}  // namespace swallow
