// SWALLOW_CHECK: cheap, always-on invariant probes (ISSUE 5 tentpole).
//
// Probes are sprinkled through the hot layers (event pump, switch credit
// machinery, energy merge) and compiled in only when the build sets the
// SWALLOW_CHECK option (cmake -DSWALLOW_CHECK=ON).  Each probe is a single
// comparison on data the surrounding code already touches, so a check
// build stays fast enough to run the full differential sweeps under it —
// the CI sanitizer jobs do exactly that.
//
// A firing probe throws InternalError: in a test that is a failure, in
// swallow_check it is reported as a divergence of kind "invariant".
#pragma once

#include "common/error.h"

#if defined(SWALLOW_CHECK)
#define SWALLOW_CHECK_ENABLED 1
#else
#define SWALLOW_CHECK_ENABLED 0
#endif

#if SWALLOW_CHECK_ENABLED
#define SWALLOW_CHECK_PROBE(cond, what)                                 \
  do {                                                                  \
    if (!(cond)) {                                                      \
      throw ::swallow::InternalError("SWALLOW_CHECK probe failed: " what \
                                     " [" #cond "]");                   \
    }                                                                   \
  } while (0)
#else
#define SWALLOW_CHECK_PROBE(cond, what) \
  do {                                  \
  } while (0)
#endif
