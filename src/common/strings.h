// Small string utilities shared by the assembler, table renderer and CLIs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace swallow {

/// Strip leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on any of the characters in `seps`, dropping empty fields.
std::vector<std::string_view> split(std::string_view s,
                                    std::string_view seps = " \t,");

/// Split into at most two pieces at the first occurrence of `sep`.
std::vector<std::string_view> split_first(std::string_view s, char sep);

std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

/// Parse an integer accepting decimal, 0x-hex and a leading '-' or '#'.
/// Throws swallow::Error on malformed input.
long long parse_int(std::string_view s);

/// printf-style formatting into std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace swallow
