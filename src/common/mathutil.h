// Small numeric helpers: linear interpolation/regression used by the power
// models and the benchmark fit checks.
#pragma once

#include <cstddef>
#include <span>
#include <utility>

#include "common/error.h"

namespace swallow {

/// Linear interpolation of y over [x0,x1]; clamps outside the interval.
constexpr double lerp_clamped(double x, double x0, double y0, double x1,
                              double y1) {
  if (x <= x0) return y0;
  if (x >= x1) return y1;
  return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
}

/// Result of an ordinary least squares line fit y = intercept + slope * x.
struct LineFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};

/// Least-squares fit over paired samples.  Requires >= 2 points.
LineFit fit_line(std::span<const double> xs, std::span<const double> ys);

}  // namespace swallow
