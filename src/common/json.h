// Minimal JSON DOM: parse-only, just enough for the observability tooling
// (swallow_stat, the trace schema check, tests) to consume the JSON the
// simulator itself emits.  No external dependency, no writer — emission
// stays printf-formatted for deterministic bytes.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace swallow {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parse a complete JSON document.  Throws swallow::Error with a byte
  /// offset on malformed input (trailing garbage included).
  static Json parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw Error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& as_array() const;

  /// Object field access.  `get` returns nullptr when absent.
  const Json* get(std::string_view key) const;
  const Json& at(std::string_view key) const;  // throws when absent
  bool has(std::string_view key) const { return get(key) != nullptr; }

  std::size_t size() const;  // array length / object field count
  const std::vector<std::pair<std::string, Json>>& items() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;  // insertion order

  friend class JsonParser;
};

}  // namespace swallow
