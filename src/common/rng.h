// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the simulator (ADC noise, synthetic traffic,
// property-test inputs) draw from an explicitly seeded xoshiro256**
// generator so every run is reproducible bit-for-bit.
#pragma once

#include <cstdint>

#include "common/stateio.h"

namespace swallow {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = k_default_seed) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the four state words.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).  bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Approximately standard-normal deviate (sum of 12 uniforms - 6).
  /// Plenty for modelling measurement noise.
  double next_gaussian() {
    double acc = 0.0;
    for (int i = 0; i < 12; ++i) acc += next_double();
    return acc - 6.0;
  }

  bool next_bool() { return (next_u64() & 1) != 0; }

  void save_state(StateWriter& w) const {
    for (std::uint64_t word : state_) w.u64(word);
  }
  void load_state(StateReader& r) {
    for (auto& word : state_) word = r.u64();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }
  // Arbitrary fixed default seed; any value works, determinism is the point.
  static constexpr std::uint64_t k_default_seed = 0x5fa110f00dULL;

  std::uint64_t state_[4]{};
};

}  // namespace swallow
