#include "common/table.h"

#include <algorithm>
#include <sstream>

namespace swallow {

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::rule() { rows_.push_back(Row{{}, true}); }

std::string TextTable::render() const {
  std::size_t columns = header_.size();
  for (const Row& r : rows_) columns = std::max(columns, r.cells.size());

  std::vector<std::size_t> widths(columns, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const Row& r : rows_) widen(r.cells);

  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  if (columns > 1) total += 2 * (columns - 1);

  std::ostringstream os;
  if (!title_.empty()) {
    os << title_ << '\n' << std::string(std::max(total, title_.size()), '=') << '\n';
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      os << cell;
      if (i + 1 < columns) os << std::string(widths[i] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    os << std::string(total, '-') << '\n';
  }
  for (const Row& r : rows_) {
    if (r.is_rule) {
      os << std::string(total, '-') << '\n';
    } else {
      emit(r.cells);
    }
  }
  return os.str();
}

}  // namespace swallow
