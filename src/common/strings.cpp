#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

#include "common/error.h"

namespace swallow {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, std::string_view seps) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || seps.find(s[i]) != std::string_view::npos) {
      if (i > start) out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_first(std::string_view s, char sep) {
  const std::size_t pos = s.find(sep);
  if (pos == std::string_view::npos) return {s};
  return {s.substr(0, pos), s.substr(pos + 1)};
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

long long parse_int(std::string_view s) {
  s = trim(s);
  if (!s.empty() && s.front() == '#') s.remove_prefix(1);
  bool negative = false;
  if (!s.empty() && (s.front() == '-' || s.front() == '+')) {
    negative = s.front() == '-';
    s.remove_prefix(1);
  }
  require(!s.empty(), "parse_int: empty numeric literal");
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    s.remove_prefix(2);
  } else if (s.size() > 2 && s[0] == '0' && (s[1] == 'b' || s[1] == 'B')) {
    base = 2;
    s.remove_prefix(2);
  }
  long long value = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else if (c == '_') {
      continue;  // allow 1_000_000 style grouping
    } else {
      throw Error("parse_int: bad digit in '" + std::string(s) + "'");
    }
    require(digit < base, "parse_int: digit out of range for base");
    value = value * base + digit;
  }
  return negative ? -value : value;
}

std::string strprintf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace swallow
