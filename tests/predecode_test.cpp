// Predecode-cache tests (PR 7 tentpole): the batched issue path caches
// decoded instructions per SRAM word, so every way a word can change --
// stores from the program itself, host pokes, snapshot restore -- must
// invalidate the cached slot or the batched engine silently executes
// stale instructions.  Each test pins the batched engine (core_batch from
// SystemConfig) against the stepped engine (core_batch = 1), which never
// trusts a stale cache line for more than one issue.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <span>
#include <string>

#include "arch/assembler.h"
#include "arch/core.h"
#include "arch/isa.h"
#include "board/system.h"
#include "common/units.h"
#include "sim/simulator.h"
#include "snap/machine.h"
#include "snap/snapfile.h"

namespace swallow {
namespace {

// Self-modifying loop: iterations run `addi r3, r3, 1` until r4 counts
// down to 10, then the program overwrites that instruction (via LDW of a
// data word and STW over the label) with `addi r3, r3, 100`.  The patched
// word is hot in the predecode cache when the store lands, so a missed
// invalidation keeps adding 1 and the final r3 comes out wrong.
//   iterations 1..10:  +1   each -> r3 = 10
//   iterations 11..20: +100 each -> r3 = 1010
std::string self_modifying_source() {
  const std::uint32_t patched =
      encode(Instruction{Opcode::kAddi, 3, 3, 0, 100});
  return std::string(R"(
        ldc   r4, 20
        ldc   r3, 0
    loop:
    patch:
        addi  r3, r3, 1
        subi  r4, r4, 1
        ldc   r5, 10
        eq    r5, r4, r5
        bf    r5, cont
        ldc   r0, patch
        ldc   r1, newinstr
        ldw   r1, r1, 0
        stw   r1, r0, 0
    cont:
        bt    r4, loop
        printi r3
        texit
    newinstr:
        .word )") +
         std::to_string(patched) + "\n";
}

struct RunResult {
  std::uint64_t retired;
  std::string console;
  std::uint32_t r3;
};

RunResult run_self_modifying(int core_batch) {
  Simulator sim;
  SystemConfig cfg;
  cfg.core_batch = core_batch;
  SwallowSystem sys(sim, cfg);
  Core& core = *sys.find_core(0);
  const Image img = assemble(self_modifying_source());
  core.load(img);
  core.start(img.entry);
  sys.run_until(microseconds(50.0));
  return {core.instructions_retired(), core.console(),
          core.thread_regs(0)[3]};
}

TEST(Predecode, SelfModifyingCodeMatchesAcrossEngines) {
  const RunResult stepped = run_self_modifying(1);
  const RunResult batched = run_self_modifying(SystemConfig{}.core_batch);

  // The store over a predecoded, already-executed word must take effect.
  EXPECT_EQ(stepped.r3, 1010u);
  EXPECT_EQ(batched.r3, 1010u);

  // And the two engines must agree on everything observable.
  EXPECT_EQ(stepped.retired, batched.retired);
  EXPECT_EQ(stepped.console, batched.console);
}

// Host pokes into instruction memory must also invalidate.  A spin loop
// increments r3 forever; mid-run the test pokes the loop's `addi` into a
// `subi`, so from that point r3 falls.  Both engines see the poke at the
// same simulated instant, so their final state must match exactly -- and
// the batched engine only matches if the poke dropped the cached slot.
RunResult run_poked(int core_batch) {
  Simulator sim;
  SystemConfig cfg;
  cfg.core_batch = core_batch;
  SwallowSystem sys(sim, cfg);
  Core& core = *sys.find_core(0);
  const Image img = assemble(R"(
        ldc   r3, 0
        ldc   r4, 5000
    loop:
        addi  r3, r3, 1
        subi  r4, r4, 1
        bt    r4, loop
        printi r3
        texit
  )");
  core.load(img);
  core.start(img.entry);
  sys.run_until(microseconds(10.0));  // loop is warm, thousands of iterations

  // Overwrite the `addi r3, r3, 1` (word index 2) with `subi r3, r3, 1`.
  const std::uint32_t word = encode(Instruction{Opcode::kSubi, 3, 3, 0, 1});
  std::uint8_t bytes[4];
  std::memcpy(bytes, &word, 4);
  core.poke(2 * 4, std::span<const std::uint8_t>(bytes, 4));

  sys.run_until(microseconds(80.0));
  return {core.instructions_retired(), core.console(),
          core.thread_regs(0)[3]};
}

TEST(Predecode, PokeInvalidatesWarmCache) {
  const RunResult stepped = run_poked(1);
  const RunResult batched = run_poked(SystemConfig{}.core_batch);
  EXPECT_EQ(stepped.retired, batched.retired);
  EXPECT_EQ(stepped.console, batched.console);
  EXPECT_EQ(stepped.r3, batched.r3);
  // The poke flipped the loop body from increment to decrement, so the
  // total lands far below the 5000 an unpatched run would print (negative,
  // in fact: most of the 5000 iterations run after the 10 us poke).
  EXPECT_LT(static_cast<std::int32_t>(stepped.r3), 5000);
}

// Multi-thread fast runs (PR 10 satellite): with several hardware threads
// ready on pure register/branch loops, the batched engine takes
// Core::issue_fast_run_multi, which replicates the round-robin pick and
// the per-issue timing of stepped issue.  Three threads spin loops of
// different lengths, so the interleave (and hence the rotation state and
// every intermediate ready_at) is exercised across thousands of issues;
// the workers publish their accumulators through memory at the end.
std::string multi_thread_source() {
  return R"(
        getr  r4, 3
        getst r5, r4
        bf    r5, fail
        tinitpc r5, worker1
        ldc   r0, 0xfff0
        tinitsp r5, r0
        getst r5, r4
        bf    r5, fail
        tinitpc r5, worker2
        ldc   r0, 0xff00
        tinitsp r5, r0
        msync r4             # start both workers
        ldc   r3, 0
        ldc   r2, 4000
    mloop:
        addi  r3, r3, 3
        subi  r2, r2, 1
        bt    r2, mloop
        tjoin r4
        ldc   r1, out
        ldw   r6, r1, 0
        ldw   r7, r1, 1
        printi r3
        printi r6
        printi r7
        texit
    fail:
        texit
    worker1:
        ldc   r6, 0
        ldc   r7, 3000
    w1:
        addi  r6, r6, 5
        subi  r7, r7, 1
        bt    r7, w1
        ldc   r1, out
        stw   r6, r1, 0
        texit
    worker2:
        ldc   r6, 0
        ldc   r7, 5000
    w2:
        addi  r6, r6, 7
        subi  r7, r7, 1
        bt    r7, w2
        ldc   r1, out
        stw   r6, r1, 1
        texit
    out: .space 2
  )";
}

RunResult run_multi_thread(int core_batch) {
  Simulator sim;
  SystemConfig cfg;
  cfg.core_batch = core_batch;
  SwallowSystem sys(sim, cfg);
  Core& core = *sys.find_core(0);
  const Image img = assemble(multi_thread_source());
  core.load(img);
  core.start(img.entry);
  sys.run_until(microseconds(600.0));
  return {core.instructions_retired(), core.console(),
          core.thread_regs(0)[3]};
}

TEST(Predecode, MultiThreadFastRunsMatchSteppedIssue) {
  const RunResult stepped = run_multi_thread(1);
  const RunResult batched = run_multi_thread(SystemConfig{}.core_batch);

  // Architectural results: master sums 4000 * 3, workers 3000 * 5 and
  // 5000 * 7 (printed via the console after the join).
  EXPECT_EQ(stepped.r3, 12000u);
  EXPECT_EQ(batched.r3, 12000u);
  EXPECT_NE(stepped.console.find("15000"), std::string::npos);
  EXPECT_NE(stepped.console.find("35000"), std::string::npos);

  // The engines must agree bit-for-bit: same retired count, same
  // interleave-dependent console, same registers.
  EXPECT_EQ(stepped.retired, batched.retired);
  EXPECT_EQ(stepped.console, batched.console);
}

// Snapshot/restore with the batched engine: run_until(T) chops a batch at
// the horizon mid-program, the snapshot is taken there, and the restored
// machine (whose predecode cache starts empty) must replay to the same
// final state as the uninterrupted run.
TEST(Predecode, SnapshotRoundtripMidBatch) {
  const Image img = assemble(self_modifying_source());
  const TimePs half = microseconds(3.0);
  const SystemConfig cfg;  // default core_batch: batched engine

  // Uninterrupted reference run.
  Simulator sim_a;
  SwallowSystem a(sim_a, cfg);
  a.find_core(0)->load(img);
  a.find_core(0)->start(img.entry);
  a.run_until(2 * half);

  // Interrupted run: snapshot at T, restore into a fresh machine.
  Simulator sim_b;
  SwallowSystem b(sim_b, cfg);
  b.find_core(0)->load(img);
  b.find_core(0)->start(img.entry);
  b.run_until(half);
  const SnapshotFile mid = SnapshotFile::decode(
      save_machine(SnapTargets{&b, nullptr, nullptr}).encode());

  Simulator sim_c;
  SwallowSystem c(sim_c, cfg);
  restore_machine(mid, SnapTargets{&c, nullptr, nullptr});
  EXPECT_EQ(c.now(), half);
  c.run_until(2 * half);

  Core& ca = *a.find_core(0);
  Core& cc = *c.find_core(0);
  EXPECT_EQ(ca.instructions_retired(), cc.instructions_retired());
  EXPECT_EQ(ca.console(), cc.console());
  EXPECT_EQ(ca.thread_regs(0), cc.thread_regs(0));
}

}  // namespace
}  // namespace swallow
