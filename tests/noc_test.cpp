// Tests for the network-on-chip: wormhole routing, credit flow control,
// link timing and energy, multi-hop routing, link aggregation, circuit
// holding and the routing strategies of §V.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>

#include "arch/assembler.h"
#include "arch/core.h"
#include "common/strings.h"
#include "energy/ledger.h"
#include "noc/network.h"
#include "noc/routing.h"
#include "noc/switch.h"
#include "sim/simulator.h"

namespace swallow {
namespace {

TEST(Routing, TableRouterLookups) {
  TableRouter r;
  r.set_route(5, kDirNorth);
  r.set_route(9, kDirEast);
  EXPECT_EQ(r.route(0, 5), kDirNorth);
  EXPECT_EQ(r.route(0, 9), kDirEast);
  EXPECT_EQ(r.route(0, 77), kDirUnroutable);
  r.set_default(kDirSouth);
  EXPECT_EQ(r.route(0, 77), kDirSouth);
}

TEST(Routing, BitCompareRouterUsesHighestDifferingBit) {
  // A 4-node hypercube: bit 0 -> "east", bit 1 -> "north".
  BitCompareRouter r;
  r.set_bit_direction(0, kDirEast);
  r.set_bit_direction(1, kDirNorth);
  EXPECT_EQ(r.route(0b00, 0b01), kDirEast);
  EXPECT_EQ(r.route(0b00, 0b10), kDirNorth);
  EXPECT_EQ(r.route(0b00, 0b11), kDirNorth);  // highest bit wins
  EXPECT_EQ(r.route(0b10, 0b11), kDirEast);
  EXPECT_EQ(r.route(3, 3), kDirUnroutable);
}

/// Fixture: cores on switches joined by configurable topologies.
class NocTest : public ::testing::Test {
 protected:
  Simulator sim;
  EnergyLedger ledger;

  struct Node {
    std::unique_ptr<Core> core;
    Switch* sw = nullptr;
  };

  std::deque<Node> nodes;  // deque: references stay valid as nodes are added
  std::unique_ptr<Network> net;

  void make_network(LinkGrade grade = LinkGrade::kSwallowDefault) {
    net = std::make_unique<Network>(sim, ledger, grade);
  }

  /// Add a core + switch with a shared router.
  Node& add_node(NodeId id, std::shared_ptr<Router> router) {
    if (!net) make_network();
    Node n;
    Core::Config cfg;
    cfg.node_id = id;
    n.core = std::make_unique<Core>(sim, ledger, cfg);
    n.sw = &net->add_switch(id, std::move(router));
    n.sw->attach_core(*n.core);
    nodes.push_back(std::move(n));
    return nodes.back();
  }

  /// Sender program: one word then END to (node, chanend 0).
  static std::string sender_word(NodeId dest_node, std::uint32_t value) {
    return strprintf(R"(
        getr  r0, 2
        ldc   r1, %u
        ldch  r1, 2
        setd  r0, r1
        ldc   r2, 0x%x
        ldch  r2, 0x%x
        out   r0, r2
        outct r0, 1
        texit
    )",
                     static_cast<unsigned>(dest_node), value >> 16,
                     value & 0xFFFF);
  }

  static std::string receiver_word() {
    return R"(
        getr  r0, 2
        in    r1, r0
        chkct r0, 1
        ldc   r2, out
        stw   r1, r2, 0
        texit
    out: .word 0
    )";
  }

  std::uint32_t receiver_result(Core& core) {
    return core.peek_word(assemble(receiver_word()).symbol("out") * 4);
  }
};

TEST_F(NocTest, WordAcrossOneLink) {
  auto shared = std::make_shared<TableRouter>();
  shared->set_default(kDirEast);  // every switch forwards unknown nodes east
  Node& a = add_node(0, shared);
  auto west = std::make_shared<TableRouter>();
  west->set_default(kDirWest);
  Node& b = add_node(1, west);
  net->connect(*a.sw, kDirEast, *b.sw, kDirWest, LinkClass::kOnChip);

  a.core->load(assemble(sender_word(1, 0xCAFED00D)));
  b.core->load(assemble(receiver_word()));
  a.core->start();
  b.core->start();
  sim.run_until(milliseconds(1.0));
  ASSERT_FALSE(a.core->trapped()) << a.core->trap().message;
  ASSERT_FALSE(b.core->trapped()) << b.core->trap().message;
  EXPECT_TRUE(b.core->finished());
  EXPECT_EQ(receiver_result(*b.core), 0xCAFED00Du);
}

TEST_F(NocTest, LinkEnergyMatchesTableOne) {
  auto east = std::make_shared<TableRouter>();
  east->set_default(kDirEast);
  auto west = std::make_shared<TableRouter>();
  west->set_default(kDirWest);
  Node& a = add_node(0, east);
  Node& b = add_node(1, west);
  net->connect(*a.sw, kDirEast, *b.sw, kDirWest, LinkClass::kBoardHorizontal);

  a.core->load(assemble(sender_word(1, 42)));
  b.core->load(assemble(receiver_word()));
  a.core->start();
  b.core->start();
  sim.run_until(milliseconds(1.0));
  ASSERT_TRUE(b.core->finished());

  // 3 header + 4 data + 1 END = 8 tokens of 8 bits at 201.6 pJ/bit.
  const std::uint64_t tokens =
      a.sw->link_tokens_sent(LinkClass::kBoardHorizontal);
  EXPECT_EQ(tokens, 8u);
  EXPECT_NEAR(to_picojoules(ledger.total(EnergyAccount::kLinkBoardHorizontal)),
              8 * 8 * 201.6, 1e-6);
}

TEST_F(NocTest, TwoHopRouteThroughMiddleSwitch) {
  // Chain 0 -- 1 -- 2; table routing east/west by node id.
  for (NodeId id = 0; id < 3; ++id) {
    auto r = std::make_shared<TableRouter>();
    for (NodeId dest = 0; dest < 3; ++dest) {
      if (dest != id) r->set_route(dest, dest > id ? kDirEast : kDirWest);
    }
    add_node(id, std::move(r));
  }
  net->connect(*nodes[0].sw, kDirEast, *nodes[1].sw, kDirWest,
               LinkClass::kOnChip);
  net->connect(*nodes[1].sw, kDirEast, *nodes[2].sw, kDirWest,
               LinkClass::kBoardHorizontal);

  nodes[0].core->load(assemble(sender_word(2, 0x12345678)));
  nodes[2].core->load(assemble(receiver_word()));
  nodes[0].core->start();
  nodes[2].core->start();
  sim.run_until(milliseconds(1.0));
  ASSERT_TRUE(nodes[2].core->finished());
  EXPECT_EQ(receiver_result(*nodes[2].core), 0x12345678u);
  // The middle switch forwarded the full packet (8 tokens).
  EXPECT_EQ(nodes[1].sw->tokens_forwarded(), 8u);
  EXPECT_EQ(nodes[1].sw->packets_routed(), 1u);
}

TEST_F(NocTest, UnroutableDestinationIsSunkNotWedged) {
  auto r = std::make_shared<TableRouter>();  // no routes at all
  Node& a = add_node(0, r);
  Node& b = add_node(1, r);
  net->connect(*a.sw, kDirEast, *b.sw, kDirWest, LinkClass::kOnChip);

  a.core->load(assemble(sender_word(7, 1)));  // node 7 does not exist
  a.core->start();
  sim.run_until(milliseconds(1.0));
  EXPECT_TRUE(a.core->finished());  // sender is not blocked forever
  EXPECT_EQ(a.sw->packets_sunk(), 1u);
}

TEST_F(NocTest, BackpressureBlocksSenderWithoutLoss) {
  auto east = std::make_shared<TableRouter>();
  east->set_default(kDirEast);
  auto west = std::make_shared<TableRouter>();
  west->set_default(kDirWest);
  Node& a = add_node(0, east);
  Node& b = add_node(1, west);
  net->connect(*a.sw, kDirEast, *b.sw, kDirWest, LinkClass::kOnChip);

  // Sender pushes 32 words; receiver waits 100 us before draining.
  a.core->load(assemble(R"(
      getr  r0, 2
      ldc   r1, 1
      ldch  r1, 2
      setd  r0, r1
      ldc   r2, 32
  loop:
      out   r0, r2
      subi  r2, r2, 1
      bt    r2, loop
      outct r0, 1
      texit
  )"));
  const std::string rx = R"(
      getr  r0, 2
      gettime r3
      ldc   r4, 10000      # 100 us in 10 ns ticks
      add   r3, r3, r4
      timewait r3
      ldc   r2, 32
      ldc   r5, 0
  loop:
      in    r1, r0
      add   r5, r5, r1
      subi  r2, r2, 1
      bt    r2, loop
      chkct r0, 1
      ldc   r6, out
      stw   r5, r6, 0
      texit
  out: .word 0
  )";
  b.core->load(assemble(rx));
  a.core->start();
  b.core->start();
  // After 50 us the sender must be stalled (buffers are far smaller than
  // 32 words) but nothing may be lost.
  sim.run_until(microseconds(50.0));
  EXPECT_FALSE(a.core->finished());
  sim.run_until(milliseconds(2.0));
  ASSERT_FALSE(b.core->trapped()) << b.core->trap().message;
  ASSERT_TRUE(a.core->finished());
  ASSERT_TRUE(b.core->finished());
  // Sum 1..32 = 528: every word arrived exactly once, in order.
  EXPECT_EQ(b.core->peek_word(assemble(rx).symbol("out") * 4), 528u);
}

TEST_F(NocTest, WormholeCircuitBlocksRivalUntilEnd) {
  // Nodes 0 and 1 both send to node 2 over the single east link of node 1?
  // Topology: 0 -> 1 -> 2 chain; node 1 also originates traffic to 2, so
  // packets from 0 and from 1 contend for the 1->2 link.
  for (NodeId id = 0; id < 3; ++id) {
    auto r = std::make_shared<TableRouter>();
    for (NodeId dest = 0; dest < 3; ++dest) {
      if (dest != id) r->set_route(dest, dest > id ? kDirEast : kDirWest);
    }
    add_node(id, std::move(r));
  }
  net->connect(*nodes[0].sw, kDirEast, *nodes[1].sw, kDirWest,
               LinkClass::kOnChip);
  net->connect(*nodes[1].sw, kDirEast, *nodes[2].sw, kDirWest,
               LinkClass::kOnChip);

  // Node 0 sends a long packet (16 words, one END) to node 2 chanend 0;
  // node 1 sends one word to node 2 chanend 1.
  nodes[0].core->load(assemble(R"(
      getr  r0, 2
      ldc   r1, 2
      ldch  r1, 2        # node 2, chanend 0
      setd  r0, r1
      ldc   r2, 16
  loop:
      out   r0, r2
      subi  r2, r2, 1
      bt    r2, loop
      outct r0, 1
      texit
  )"));
  nodes[1].core->load(assemble(R"(
      getr  r0, 2
      ldc   r1, 2
      ldch  r1, 0x0102   # node 2, chanend 1
      setd  r0, r1
      ldc   r2, 99
      out   r0, r2
      outct r0, 1
      texit
  )"));
  const std::string rx = R"(
      getr  r0, 2          # chanend 0
      getr  r3, 2          # chanend 1
      ldc   r2, 16
      ldc   r5, 0
  loop:
      in    r1, r0
      add   r5, r5, r1
      subi  r2, r2, 1
      bt    r2, loop
      chkct r0, 1
      in    r6, r3
      chkct r3, 1
      ldc   r7, out
      stw   r5, r7, 0
      stw   r6, r7, 1
      texit
  out: .space 2
  )";
  nodes[2].core->load(assemble(rx));
  for (auto& n : nodes) n.core->start();
  sim.run_until(milliseconds(5.0));
  for (auto& n : nodes) {
    ASSERT_FALSE(n.core->trapped()) << n.core->trap().message;
    ASSERT_TRUE(n.core->finished());
  }
  const std::uint32_t base = assemble(rx).symbol("out") * 4;
  EXPECT_EQ(nodes[2].core->peek_word(base), 136u);  // sum 1..16
  EXPECT_EQ(nodes[2].core->peek_word(base + 4), 99u);
}

TEST_F(NocTest, LinkAggregationUsesParallelLinks) {
  // Two parallel on-chip links east; two concurrent packets should overlap
  // instead of serialising.  §V.B: "a new communication will use the next
  // unused link".
  auto east = std::make_shared<TableRouter>();
  east->set_default(kDirEast);
  auto west = std::make_shared<TableRouter>();
  west->set_default(kDirWest);
  Node& a = add_node(0, east);
  Node& b = add_node(1, west);

  auto run_experiment = [&](int link_count) -> TimePs {
    Simulator local_sim;
    EnergyLedger local_ledger;
    Network local_net(local_sim, local_ledger);
    Core::Config ca;
    ca.node_id = 0;
    Core core_a(local_sim, local_ledger, ca);
    Core::Config cb;
    cb.node_id = 1;
    Core core_b(local_sim, local_ledger, cb);
    Switch& sa = local_net.add_switch(0, east);
    Switch& sb = local_net.add_switch(1, west);
    sa.attach_core(core_a);
    sb.attach_core(core_b);
    local_net.connect(sa, kDirEast, sb, kDirWest, LinkClass::kOnChip,
                      link_count);
    // Two threads on A stream 64 words each to chanends 0 and 1 of B.
    core_a.load(assemble(R"(
        getr  r4, 3
        getst r5, r4
        tinitpc r5, second
        ldc   r6, 0xff00
        tinitsp r5, r6
        msync r4
        getr  r0, 2
        ldc   r1, 1
        ldch  r1, 2       # node 1 chanend 0
        setd  r0, r1
        bl    stream
        tjoin r4
        texit
    second:
        getr  r0, 2
        ldc   r1, 1
        ldch  r1, 0x0102  # node 1 chanend 1
        setd  r0, r1
        bl    stream
        texit
    stream:
        ldc   r2, 64
    sloop:
        out   r0, r2
        subi  r2, r2, 1
        bt    r2, sloop
        outct r0, 1
        ret
    )"));
    core_b.load(assemble(R"(
        getr  r4, 3
        getst r5, r4
        tinitpc r5, second
        ldc   r6, 0xff00
        tinitsp r5, r6
        msync r4
        getr  r0, 2
        bl    drain
        tjoin r4
        texit
    second:
        getr  r0, 2
        bl    drain
        texit
    drain:
        ldc   r2, 64
    dloop:
        in    r1, r0
        subi  r2, r2, 1
        bt    r2, dloop
        chkct r0, 1
        ret
    )"));
    core_a.start();
    core_b.start();
    local_sim.run();
    EXPECT_TRUE(core_a.finished() && core_b.finished())
        << "links=" << link_count;
    return local_sim.now();
  };

  // Use fresh simulators per experiment; the fixture's nodes are unused.
  (void)a;
  (void)b;
  const TimePs t1 = run_experiment(1);
  const TimePs t2 = run_experiment(2);
  // Two links should be close to twice as fast for two link-bound streams.
  EXPECT_LT(static_cast<double>(t2), 0.65 * static_cast<double>(t1));
}

TEST_F(NocTest, PauseClosesRouteWithoutDelivery) {
  auto east = std::make_shared<TableRouter>();
  east->set_default(kDirEast);
  auto west = std::make_shared<TableRouter>();
  west->set_default(kDirWest);
  Node& a = add_node(0, east);
  Node& b = add_node(1, west);
  net->connect(*a.sw, kDirEast, *b.sw, kDirWest, LinkClass::kOnChip);

  // A sends word, PAUSE (closing the route), then word, END.  B must see
  // exactly two words and one END — the PAUSE is invisible.
  a.core->load(assemble(R"(
      getr  r0, 2
      ldc   r1, 1
      ldch  r1, 2
      setd  r0, r1
      ldc   r2, 11
      out   r0, r2
      outct r0, 2        # PAUSE
      ldc   r2, 22
      out   r0, r2       # re-opens with a fresh header
      outct r0, 1        # END
      texit
  )"));
  const std::string rx = R"(
      getr  r0, 2
      in    r1, r0
      in    r2, r0
      chkct r0, 1
      ldc   r3, out
      stw   r1, r3, 0
      stw   r2, r3, 1
      texit
  out: .space 2
  )";
  b.core->load(assemble(rx));
  a.core->start();
  b.core->start();
  sim.run_until(milliseconds(1.0));
  ASSERT_FALSE(b.core->trapped()) << b.core->trap().message;
  ASSERT_TRUE(b.core->finished());
  const std::uint32_t base = assemble(rx).symbol("out") * 4;
  EXPECT_EQ(b.core->peek_word(base), 11u);
  EXPECT_EQ(b.core->peek_word(base + 4), 22u);
  // Two headers were sent (route re-opened after PAUSE).
  EXPECT_EQ(a.sw->link_tokens_sent(LinkClass::kOnChip),
            3u + 4u + 1u + 3u + 4u + 1u);
}

TEST_F(NocTest, StreamThroughputApproachesLineRateMinusOverhead) {
  // §V.B: packet overhead reduces throughput to ~87 % of link speed.
  auto east = std::make_shared<TableRouter>();
  east->set_default(kDirEast);
  auto west = std::make_shared<TableRouter>();
  west->set_default(kDirWest);
  Node& a = add_node(0, east);
  Node& b = add_node(1, west);
  net->connect(*a.sw, kDirEast, *b.sw, kDirWest, LinkClass::kOnChip);

  // 32 packets of 7 words (28 data tokens + 3 header + 1 END = 32 tokens).
  a.core->load(assemble(R"(
      getr  r0, 2
      ldc   r1, 1
      ldch  r1, 2
      setd  r0, r1
      ldc   r3, 32         # packets
  ploop:
      ldc   r2, 7          # words per packet
  wloop:
      out   r0, r2
      subi  r2, r2, 1
      bt    r2, wloop
      outct r0, 1
      subi  r3, r3, 1
      bt    r3, ploop
      texit
  )"));
  b.core->load(assemble(R"(
      getr  r0, 2
      ldc   r3, 32
  ploop:
      ldc   r2, 7
  wloop:
      in    r1, r0
      subi  r2, r2, 1
      bt    r2, wloop
      chkct r0, 1
      subi  r3, r3, 1
      bt    r3, ploop
      texit
  )"));
  a.core->start();
  b.core->start();
  sim.run();
  ASSERT_TRUE(a.core->finished() && b.core->finished());
  // Effective payload rate vs the 250 Mbit/s line rate.
  const double payload_bits = 32.0 * 28.0 * 8.0;
  const double rate_mbps = payload_bits / to_seconds(sim.now()) / 1e6;
  EXPECT_GT(rate_mbps, 0.80 * 250.0);
  EXPECT_LT(rate_mbps, 0.92 * 250.0);
}

TEST_F(NocTest, ArchitecturalMaxGradeIsFaster) {
  auto run_grade = [&](LinkGrade grade) -> TimePs {
    Simulator local_sim;
    EnergyLedger local_ledger;
    Network local_net(local_sim, local_ledger, grade);
    auto east = std::make_shared<TableRouter>();
    east->set_default(kDirEast);
    auto west = std::make_shared<TableRouter>();
    west->set_default(kDirWest);
    Core::Config ca;
    ca.node_id = 0;
    Core core_a(local_sim, local_ledger, ca);
    Core::Config cb;
    cb.node_id = 1;
    Core core_b(local_sim, local_ledger, cb);
    Switch& sa = local_net.add_switch(0, east);
    Switch& sb = local_net.add_switch(1, west);
    sa.attach_core(core_a);
    sb.attach_core(core_b);
    local_net.connect(sa, kDirEast, sb, kDirWest, LinkClass::kBoardVertical);
    core_a.load(assemble(R"(
        getr  r0, 2
        ldc   r1, 1
        ldch  r1, 2
        setd  r0, r1
        ldc   r2, 64
    loop:
        out   r0, r2
        subi  r2, r2, 1
        bt    r2, loop
        outct r0, 1
        texit
    )"));
    core_b.load(assemble(R"(
        getr  r0, 2
        ldc   r2, 64
    loop:
        in    r1, r0
        subi  r2, r2, 1
        bt    r2, loop
        chkct r0, 1
        texit
    )"));
    core_a.start();
    core_b.start();
    local_sim.run();
    EXPECT_TRUE(core_b.finished());
    return local_sim.now();
  };
  const TimePs slow = run_grade(LinkGrade::kSwallowDefault);     // 62.5 Mbit/s
  const TimePs fast = run_grade(LinkGrade::kArchitecturalMax);   // 125 Mbit/s
  EXPECT_NEAR(static_cast<double>(slow) / static_cast<double>(fast), 2.0, 0.2);
}

TEST_F(NocTest, RouteHoldStatisticsTrackPacketDurations) {
  auto east = std::make_shared<TableRouter>();
  east->set_default(kDirEast);
  auto west = std::make_shared<TableRouter>();
  west->set_default(kDirWest);
  Node& a = add_node(0, east);
  Node& b = add_node(1, west);
  net->connect(*a.sw, kDirEast, *b.sw, kDirWest, LinkClass::kOnChip);

  // 8 packets of 4 words each: the sender switch sees 8 route holds.
  a.core->load(assemble(R"(
      getr  r0, 2
      ldc   r1, 1
      ldch  r1, 2
      setd  r0, r1
      ldc   r3, 8
  ploop:
      ldc   r2, 4
  wloop:
      out   r0, r2
      subi  r2, r2, 1
      bt    r2, wloop
      outct r0, 1
      subi  r3, r3, 1
      bt    r3, ploop
      texit
  )"));
  b.core->load(assemble(R"(
      getr  r0, 2
      ldc   r3, 8
  ploop:
      ldc   r2, 4
  wloop:
      in    r1, r0
      subi  r2, r2, 1
      bt    r2, wloop
      chkct r0, 1
      subi  r3, r3, 1
      bt    r3, ploop
      texit
  )"));
  a.core->start();
  b.core->start();
  sim.run();
  const Sampler& holds = a.sw->route_hold_ns();
  EXPECT_EQ(holds.count(), 8u);
  // Each packet: ~20 tokens incl. header at 32 ns each -> several hundred
  // ns held; all packets identical, so min ~= max.
  EXPECT_GT(holds.mean(), 300.0);
  EXPECT_LT(holds.mean(), 1500.0);
  EXPECT_NEAR(holds.min(), holds.max(), 100.0);
}

TEST_F(NocTest, TokenConservationUnderContention) {
  // Four senders to one receiver chanend; every token must arrive exactly
  // once (credit flow control never drops or duplicates).
  auto r = std::make_shared<TableRouter>();
  r->set_default(kDirEast);
  auto west = std::make_shared<TableRouter>();
  west->set_default(kDirWest);
  Node& hub = add_node(0, west);
  for (NodeId id = 1; id <= 4; ++id) add_node(id, r);
  for (int i = 1; i <= 4; ++i) {
    net->connect(*nodes[static_cast<std::size_t>(i)].sw, kDirEast, *hub.sw,
                 kDirWest, LinkClass::kBoardHorizontal);
  }
  // Hub routes unknown nodes west — but packets arriving for node 0 are
  // local, so the default never fires.
  for (int i = 1; i <= 4; ++i) {
    // Each sender i sends i as 8 words, then END.
    nodes[static_cast<std::size_t>(i)].core->load(
        assemble(strprintf(R"(
        getr  r0, 2
        ldc   r1, 0
        ldch  r1, 2
        setd  r0, r1
        ldc   r2, 8
    loop:
        ldc   r3, %d
        out   r0, r3
        subi  r2, r2, 1
        bt    r2, loop
        outct r0, 1
        texit
    )",
                           i)));
  }
  // Wormhole holds the endpoint per packet, so the hub sees four complete
  // packets of 8 words + END in some order.
  const std::string rx = R"(
      getr  r0, 2
      ldc   r4, 4       # packets
      ldc   r5, 0
  ploop:
      ldc   r2, 8
  wloop:
      in    r1, r0
      add   r5, r5, r1
      subi  r2, r2, 1
      bt    r2, wloop
      chkct r0, 1
      subi  r4, r4, 1
      bt    r4, ploop
      ldc   r6, out
      stw   r5, r6, 0
      texit
  out: .word 0
  )";
  hub.core->load(assemble(rx));
  for (auto& n : nodes) n.core->start();
  sim.run_until(milliseconds(10.0));
  ASSERT_FALSE(hub.core->trapped()) << hub.core->trap().message;
  ASSERT_TRUE(hub.core->finished());
  // Sum = 8*(1+2+3+4) = 80.
  EXPECT_EQ(hub.core->peek_word(assemble(rx).symbol("out") * 4), 80u);
}

}  // namespace
}  // namespace swallow
