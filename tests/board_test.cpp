// Tests for the board layer: lattice addressing, 2.5D dimension-order
// routing properties, slice construction and wiring, inter-slice cables,
// power rails and measurement, the Ethernet bridge and network boot.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "arch/assembler.h"
#include "board/loader.h"
#include "board/telemetry.h"
#include "board/system.h"
#include "common/rng.h"
#include "common/strings.h"
#include "sim/simulator.h"

namespace swallow {
namespace {

TEST(Lattice, NodeIdRoundTrip) {
  for (int x : {0, 3, 7, 127}) {
    for (int y : {0, 1, 5, 59}) {
      for (Layer l : {Layer::kVertical, Layer::kHorizontal}) {
        const NodeId id = lattice_node_id(x, y, l);
        EXPECT_EQ(node_chip_x(id), x);
        EXPECT_EQ(node_chip_y(id), y);
        EXPECT_EQ(node_layer(id), l);
      }
    }
  }
}

TEST(Lattice, SameChipRoutesInternal) {
  LatticeRouter r;
  const NodeId v = lattice_node_id(2, 1, Layer::kVertical);
  const NodeId h = lattice_node_id(2, 1, Layer::kHorizontal);
  EXPECT_EQ(r.route(v, h), kDirInternal);
  EXPECT_EQ(r.route(h, v), kDirInternal);
}

TEST(Lattice, VerticalFirstPrefersVertical) {
  LatticeRouter r(RoutePriority::kVerticalFirst);
  const NodeId src = lattice_node_id(0, 0, Layer::kVertical);
  const NodeId dest = lattice_node_id(3, 1, Layer::kHorizontal);
  // Needs both dimensions: vertical first -> south.
  EXPECT_EQ(r.route(src, dest), kDirSouth);
  // From the horizontal layer with vertical work pending: go internal.
  const NodeId src_h = lattice_node_id(0, 0, Layer::kHorizontal);
  EXPECT_EQ(r.route(src_h, dest), kDirInternal);
}

TEST(Lattice, HorizontalFirstPrefersHorizontal) {
  LatticeRouter r(RoutePriority::kHorizontalFirst);
  const NodeId src = lattice_node_id(0, 0, Layer::kHorizontal);
  const NodeId dest = lattice_node_id(3, 1, Layer::kVertical);
  EXPECT_EQ(r.route(src, dest), kDirEast);
}

/// Walk the lattice following router decisions; returns (reached, hops,
/// mid-route layer transitions).
std::tuple<bool, int, int> walk(const Router& r, NodeId src, NodeId dest,
                                int cols, int rows) {
  NodeId cur = src;
  int hops = 0, transitions = 0;
  while (cur != dest && hops < 200) {
    const int dir = r.route(cur, dest);
    int x = node_chip_x(cur), y = node_chip_y(cur);
    Layer l = node_layer(cur);
    switch (dir) {
      case kDirNorth:
        EXPECT_EQ(l, Layer::kVertical);
        --y;
        break;
      case kDirSouth:
        EXPECT_EQ(l, Layer::kVertical);
        ++y;
        break;
      case kDirEast:
        EXPECT_EQ(l, Layer::kHorizontal);
        ++x;
        break;
      case kDirWest:
        EXPECT_EQ(l, Layer::kHorizontal);
        --x;
        break;
      case kDirInternal:
        l = l == Layer::kVertical ? Layer::kHorizontal : Layer::kVertical;
        // A transition on the destination chip is the final delivery hop,
        // not a routing transition.
        if (!(x == node_chip_x(dest) && y == node_chip_y(dest))) ++transitions;
        break;
      default:
        ADD_FAILURE() << "unroutable during walk";
        return {false, hops, transitions};
    }
    if (x < 0 || x >= cols || y < 0 || y >= rows) {
      ADD_FAILURE() << "walked off the lattice";
      return {false, hops, transitions};
    }
    cur = lattice_node_id(x, y, l);
    ++hops;
  }
  return {cur == dest, hops, transitions};
}

class LatticeRoutingProperty
    : public ::testing::TestWithParam<std::tuple<RoutePriority, int, int>> {};

TEST_P(LatticeRoutingProperty, AllPairsDeliverWithBoundedTransitions) {
  const auto [priority, cols, rows] = GetParam();
  LatticeRouter r(priority);
  Rng rng(static_cast<std::uint64_t>(cols * 1000 + rows));
  for (int iter = 0; iter < 400; ++iter) {
    const int sx = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(cols)));
    const int sy = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(rows)));
    const int dx = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(cols)));
    const int dy = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(rows)));
    const Layer sl = rng.next_bool() ? Layer::kVertical : Layer::kHorizontal;
    const Layer dl = rng.next_bool() ? Layer::kVertical : Layer::kHorizontal;
    const NodeId src = lattice_node_id(sx, sy, sl);
    const NodeId dest = lattice_node_id(dx, dy, dl);
    if (src == dest) continue;
    const auto [reached, hops, transitions] = walk(r, src, dest, cols, rows);
    EXPECT_TRUE(reached) << "src=" << src << " dest=" << dest;
    // §V.A: at most two mid-route layer transitions.
    EXPECT_LE(transitions, 2) << "src=" << src << " dest=" << dest;
    // Dimension-order: hops bounded by manhattan distance + transitions + 1.
    const int manhattan = std::abs(dx - sx) + std::abs(dy - sy);
    EXPECT_LE(hops, manhattan + 4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, LatticeRoutingProperty,
    ::testing::Values(
        std::make_tuple(RoutePriority::kVerticalFirst, 4, 2),    // one slice
        std::make_tuple(RoutePriority::kVerticalFirst, 8, 4),    // 2x2 slices
        std::make_tuple(RoutePriority::kVerticalFirst, 20, 12),  // 30 slices
        std::make_tuple(RoutePriority::kHorizontalFirst, 4, 2),
        std::make_tuple(RoutePriority::kHorizontalFirst, 8, 4),
        std::make_tuple(RoutePriority::kHorizontalFirst, 20, 12)));

TEST(Lattice, TableRouterMatchesComputedRouter) {
  const int cols = 8, rows = 4;
  std::vector<NodeId> all;
  for (int y = 0; y < rows; ++y) {
    for (int x = 0; x < cols; ++x) {
      all.push_back(lattice_node_id(x, y, Layer::kVertical));
      all.push_back(lattice_node_id(x, y, Layer::kHorizontal));
    }
  }
  LatticeRouter computed;
  for (NodeId self : all) {
    auto table = lattice_table_router(self, all);
    for (NodeId dest : all) {
      if (dest == self) continue;
      EXPECT_EQ(table->route(self, dest), computed.route(self, dest))
          << "self=" << self << " dest=" << dest;
    }
  }
}

TEST(Lattice, BridgeRowRoutesColumnFirst) {
  LatticeRouter r;
  const NodeId bridge = lattice_node_id(0, kBridgeRow, Layer::kVertical);
  // From a horizontal node in the wrong column: go west first.
  EXPECT_EQ(r.route(lattice_node_id(3, 1, Layer::kHorizontal), bridge),
            kDirWest);
  // From a vertical node in the right column: go south.
  EXPECT_EQ(r.route(lattice_node_id(0, 1, Layer::kVertical), bridge),
            kDirSouth);
  // From a vertical node in the wrong column: transition to horizontal.
  EXPECT_EQ(r.route(lattice_node_id(3, 1, Layer::kVertical), bridge),
            kDirInternal);
}

// ----------------------------------------------------------------- system

class BoardTest : public ::testing::Test {
 protected:
  Simulator sim;

  static std::string sender_to(NodeId node, int chanend, std::uint32_t value) {
    return strprintf(R"(
        getr  r0, 2
        ldc   r1, 0x%x
        ldch  r1, 0x%02x02
        setd  r0, r1
        ldc   r2, 0x%x
        ldch  r2, 0x%x
        out   r0, r2
        outct r0, 1
        texit
    )",
                     static_cast<unsigned>(node), static_cast<unsigned>(chanend),
                     value >> 16, value & 0xFFFF);
  }

  static std::string receiver_src() {
    return R"(
        getr  r0, 2
        in    r1, r0
        chkct r0, 1
        ldc   r2, out
        stw   r1, r2, 0
        texit
    out: .word 0
    )";
  }
};

TEST_F(BoardTest, SingleSliceBuildsSixteenCores) {
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  EXPECT_EQ(sys.core_count(), 16);
  // Node ids follow the lattice scheme.
  EXPECT_EQ(sys.core(0, 0, Layer::kVertical).node_id(),
            lattice_node_id(0, 0, Layer::kVertical));
  EXPECT_EQ(sys.core(3, 1, Layer::kHorizontal).node_id(),
            lattice_node_id(3, 1, Layer::kHorizontal));
}

TEST_F(BoardTest, MessageAcrossSliceBothDimensions) {
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  Core& tx = sys.core(0, 0, Layer::kVertical);
  Core& rx = sys.core(3, 1, Layer::kHorizontal);
  tx.load(assemble(sender_to(rx.node_id(), 0, 0xAB12CD34)));
  rx.load(assemble(receiver_src()));
  tx.start();
  rx.start();
  sim.run_until(milliseconds(1.0));
  ASSERT_FALSE(tx.trapped()) << tx.trap().message;
  ASSERT_FALSE(rx.trapped()) << rx.trap().message;
  ASSERT_TRUE(rx.finished());
  EXPECT_EQ(rx.peek_word(assemble(receiver_src()).symbol("out") * 4),
            0xAB12CD34u);
  // The route used both board link classes (vertical then horizontal).
  EXPECT_GT(sys.ledger().total(EnergyAccount::kLinkBoardVertical), 0.0);
  EXPECT_GT(sys.ledger().total(EnergyAccount::kLinkBoardHorizontal), 0.0);
}

TEST_F(BoardTest, TableRoutersBehaveIdentically) {
  SystemConfig cfg;
  cfg.use_table_routers = true;
  SwallowSystem sys(sim, cfg);
  Core& tx = sys.core(1, 0, Layer::kHorizontal);
  Core& rx = sys.core(2, 1, Layer::kVertical);
  tx.load(assemble(sender_to(rx.node_id(), 0, 77)));
  rx.load(assemble(receiver_src()));
  tx.start();
  rx.start();
  sim.run_until(milliseconds(1.0));
  ASSERT_TRUE(rx.finished());
  EXPECT_EQ(rx.peek_word(assemble(receiver_src()).symbol("out") * 4), 77u);
}

TEST_F(BoardTest, InterSliceMessageCrossesCables) {
  SystemConfig cfg;
  cfg.slices_x = 2;
  cfg.slices_y = 2;
  SwallowSystem sys(sim, cfg);
  EXPECT_EQ(sys.core_count(), 64);
  Core& tx = sys.core(0, 0, Layer::kVertical);          // top-left slice
  Core& rx = sys.core(7, 3, Layer::kHorizontal);        // bottom-right slice
  tx.load(assemble(sender_to(rx.node_id(), 0, 0xFEED)));
  rx.load(assemble(receiver_src()));
  tx.start();
  rx.start();
  sim.run_until(milliseconds(5.0));
  ASSERT_TRUE(rx.finished());
  EXPECT_EQ(rx.peek_word(assemble(receiver_src()).symbol("out") * 4), 0xFEEDu);
  EXPECT_GT(sys.ledger().total(EnergyAccount::kLinkCable), 0.0);
}

TEST_F(BoardTest, IdleSlicePowerIsInExpectedRange) {
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  sim.run_until(microseconds(10.0));
  // 16 idle cores at 500 MHz: 16 x 113 mW = 1.81 W on the core rails.
  Watts core_rails = 0;
  for (int i = 0; i < SliceSupplies::kCoreRails; ++i) {
    core_rails += sys.slice(0, 0).supplies().rail(i).power();
  }
  EXPECT_NEAR(to_milliwatts(core_rails), 16 * 113.0, 16 * 2.0);
  // Whole-slice input: add NI static, support and conversion losses.
  const Watts input = sys.slice(0, 0).input_power();
  EXPECT_GT(input, core_rails);
  EXPECT_LT(input, 5.0);
}

TEST_F(BoardTest, GetpwrReadsOwnSliceSupply) {
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  sys.start_sampling();
  Core& core = sys.core(0, 0, Layer::kVertical);
  const std::string src = R"(
      gettime r0
      ldc     r1, 2000     # wait 20 us so the ADC has sampled
      add     r0, r0, r1
      timewait r0
      getpwr  r2, 0        # core rail 0, milliwatts
      ldc     r3, out
      stw     r2, r3, 0
      texit
  out: .word 0
  )";
  core.load(assemble(src));
  core.start();
  sim.run_until(milliseconds(1.0));
  ASSERT_TRUE(core.finished());
  const std::uint32_t mw = core.peek_word(assemble(src).symbol("out") * 4);
  // Rail 0 carries four idle cores (~452 mW) plus this one's activity.
  EXPECT_GT(mw, 380u);
  EXPECT_LT(mw, 560u);
}

TEST_F(BoardTest, EthernetBridgeHostRoundTrip) {
  SystemConfig cfg;
  cfg.ethernet_bridges = 1;
  SwallowSystem sys(sim, cfg);
  EthernetBridge& br = sys.bridge(0);

  std::vector<std::vector<std::uint8_t>> host_packets;
  br.set_host_receiver([&](std::vector<std::uint8_t> p) {
    host_packets.push_back(std::move(p));
  });

  // A core streams 4 bytes to the bridge; the host sees them.
  Core& core = sys.core(2, 1, Layer::kHorizontal);
  core.load(assemble(strprintf(R"(
      getr  r0, 2
      ldc   r1, 0x%x
      ldch  r1, 2
      setd  r0, r1
      ldc   r2, 0x0403
      ldch  r2, 0x0201     # bytes 01 02 03 04 little-endian
      out   r0, r2
      outct r0, 1
      texit
  )",
                               static_cast<unsigned>(br.node_id()))));
  core.start();
  sim.run_until(milliseconds(2.0));
  ASSERT_FALSE(core.trapped()) << core.trap().message;
  ASSERT_EQ(host_packets.size(), 1u);
  EXPECT_EQ(host_packets[0],
            (std::vector<std::uint8_t>{0x01, 0x02, 0x03, 0x04}));
  EXPECT_EQ(br.bytes_to_host(), 4u);

  // Host sends into a waiting core.
  Core& rx = sys.core(1, 0, Layer::kVertical);
  rx.load(assemble(receiver_src()));
  rx.start();
  br.host_send(make_resource_id(rx.node_id(), 0, ResourceType::kChanend),
               {0xEF, 0xBE, 0x0D, 0xF0});
  sim.run_until(milliseconds(4.0));
  ASSERT_FALSE(rx.trapped()) << rx.trap().message;
  ASSERT_TRUE(rx.finished());
  EXPECT_EQ(rx.peek_word(assemble(receiver_src()).symbol("out") * 4),
            0xF00DBEEFu);
}

TEST_F(BoardTest, NetworkBootLoadsAndStartsProgram) {
  SystemConfig cfg;
  cfg.ethernet_bridges = 1;
  SwallowSystem sys(sim, cfg);
  Core& target = sys.core(3, 0, Layer::kHorizontal);

  const Image image = assemble(R"(
      ldc    r0, 42
      printi r0
      texit
  )");
  sys.boot_image(0, target.node_id(), image);
  sim.run_until(milliseconds(5.0));
  EXPECT_TRUE(sys.slice(0, 0).boot_rom(3, Layer::kHorizontal).started());
  EXPECT_TRUE(target.finished());
  EXPECT_EQ(target.console(), "42");
}

TEST_F(BoardTest, ResidentLoaderBootsThroughTheNetwork) {
  // The fully authentic boot path: a first-stage loader *written in
  // Swallow assembly* runs on the target core, receives the image over
  // the NoC and jumps to it (board/loader.h).
  SystemConfig cfg;
  cfg.ethernet_bridges = 1;
  SwallowSystem sys(sim, cfg);
  Core& target = sys.core(2, 0, Layer::kVertical);
  install_resident_loader(target);

  const Image app = assemble(R"(
      ldc    r0, 123
      printi r0
      texit
  )");
  sys.boot_image_via_resident_loader(0, target.node_id(), app);
  sim.run_until(milliseconds(5.0));
  ASSERT_FALSE(target.trapped()) << target.trap().message;
  EXPECT_TRUE(target.finished());
  EXPECT_EQ(target.console(), "123");
  // The loader itself executed real instructions for every written word.
  EXPECT_GT(target.instructions_retired(), 3u * app.words.size());
}

TEST_F(BoardTest, ResidentLoaderAcceptsMultiplePackets) {
  SystemConfig cfg;
  cfg.ethernet_bridges = 1;
  SwallowSystem sys(sim, cfg);
  Core& target = sys.core(1, 1, Layer::kHorizontal);
  install_resident_loader(target);

  // An image large enough to span several 64-byte boot packets.
  std::string src = "      ldc r1, 0\n";
  for (int i = 0; i < 60; ++i) src += "      addi r1, r1, 1\n";
  src += "      printi r1\n      texit\n";
  const Image app = assemble(src);
  ASSERT_GT(boot_packets_for_image(app).size(), 3u);
  sys.boot_image_via_resident_loader(0, target.node_id(), app);
  sim.run_until(milliseconds(10.0));
  ASSERT_FALSE(target.trapped()) << target.trap().message;
  EXPECT_EQ(target.console(), "60");
}

TEST_F(BoardTest, TelemetryStreamsAdcSamplesOverEthernet) {
  // §II: measurement data streamed out of the system over Ethernet; the
  // telemetry itself travels through the NoC with real cost.
  SystemConfig cfg;
  cfg.ethernet_bridges = 1;
  SwallowSystem sys(sim, cfg);
  Slice& slice = sys.slice(0, 0);
  slice.sampler().start(PowerSampler::Mode::kSimultaneous, 100'000.0);

  std::vector<TelemetryStreamer::Record> received;
  sys.bridge(0).set_host_receiver([&](std::vector<std::uint8_t> packet) {
    for (const auto& r : TelemetryStreamer::decode(packet)) {
      received.push_back(r);
    }
  });
  TelemetryStreamer streamer(sim, slice, sys.bridge(0));
  streamer.start();
  sim.run_until(milliseconds(2.0));
  streamer.stop();

  ASSERT_GT(received.size(), 20u);
  // A few records may still be in flight when we stop.
  EXPECT_GE(streamer.records_streamed(), received.size());
  EXPECT_LE(streamer.records_streamed(), received.size() + 10);
  // All five channels show up, and core-rail readings look like four idle
  // cores (~452 mW) within ADC noise.
  bool saw[5] = {};
  double core_rail_mw = 0;
  int core_rail_n = 0;
  for (const auto& r : received) {
    ASSERT_GE(r.channel, 0);
    ASSERT_LT(r.channel, 5);
    saw[r.channel] = true;
    if (r.channel < SliceSupplies::kCoreRails) {
      core_rail_mw += to_milliwatts(r.watts);
      ++core_rail_n;
    }
  }
  for (bool s : saw) EXPECT_TRUE(s);
  EXPECT_NEAR(core_rail_mw / core_rail_n, 452.0, 15.0);
  // Streaming cost energy on the cable to the bridge.
  EXPECT_GT(sys.ledger().total(EnergyAccount::kLinkCable), 0.0);
}

TEST_F(BoardTest, LargestDemonstratedSystemBuilds) {
  // 30 slices = 480 cores (§I), arranged 5 x 6.
  SystemConfig cfg;
  cfg.slices_x = 5;
  cfg.slices_y = 6;
  SwallowSystem sys(sim, cfg);
  EXPECT_EQ(sys.core_count(), 480);
  sim.run_until(microseconds(1.0));
  // Idle machine power: 480 x ~113 mW cores + NI/support + losses; well
  // under the loaded 134 W headline but the right order of magnitude.
  const Watts total = sys.total_input_power();
  EXPECT_GT(total, 60.0);
  EXPECT_LT(total, 134.0);
}

TEST_F(BoardTest, CornerToCornerAcross30Slices) {
  SystemConfig cfg;
  cfg.slices_x = 5;
  cfg.slices_y = 6;
  SwallowSystem sys(sim, cfg);
  Core& tx = sys.core(0, 0, Layer::kVertical);
  Core& rx = sys.core(19, 11, Layer::kHorizontal);
  tx.load(assemble(sender_to(rx.node_id(), 0, 0x5CA1AB1E)));
  rx.load(assemble(receiver_src()));
  tx.start();
  rx.start();
  sim.run_until(milliseconds(10.0));
  ASSERT_TRUE(rx.finished());
  EXPECT_EQ(rx.peek_word(assemble(receiver_src()).symbol("out") * 4),
            0x5CA1AB1Eu);
}

// One 7-byte wire record: [channel u8][ticks u32 le][code u16 le].
std::vector<std::uint8_t> wire_record(int channel, std::uint32_t ticks,
                                      std::uint16_t code) {
  return {static_cast<std::uint8_t>(channel),
          static_cast<std::uint8_t>(ticks),
          static_cast<std::uint8_t>(ticks >> 8),
          static_cast<std::uint8_t>(ticks >> 16),
          static_cast<std::uint8_t>(ticks >> 24),
          static_cast<std::uint8_t>(code),
          static_cast<std::uint8_t>(code >> 8)};
}

TEST(TelemetryDecode, FaultChannelsCarryCountsNotWatts) {
  // Channels at or above kFaultChannelBase are fault counters: decode must
  // pass the code through raw and never run it through the analog front
  // end.
  std::vector<std::uint8_t> packet;
  for (int i = 0; i < FaultCounters::kFieldCount; ++i) {
    const auto rec = wire_record(TelemetryStreamer::kFaultChannelBase + i,
                                 1000u + static_cast<std::uint32_t>(i),
                                 static_cast<std::uint16_t>(7 * i));
    packet.insert(packet.end(), rec.begin(), rec.end());
  }
  const auto records = TelemetryStreamer::decode(packet);
  ASSERT_EQ(records.size(),
            static_cast<std::size_t>(FaultCounters::kFieldCount));
  for (int i = 0; i < FaultCounters::kFieldCount; ++i) {
    const auto& r = records[static_cast<std::size_t>(i)];
    EXPECT_EQ(r.channel, TelemetryStreamer::kFaultChannelBase + i);
    EXPECT_EQ(r.ticks, 1000u + static_cast<std::uint32_t>(i));
    EXPECT_EQ(r.code, 7 * i);
    EXPECT_EQ(r.watts, 0.0) << "fault channel decoded as power";
  }
}

TEST(TelemetryDecode, FaultChannelSaturatesAtU16Max) {
  // A counter past 65535 arrives saturated; decode keeps the saturated
  // value rather than wrapping.
  const auto packet =
      wire_record(TelemetryStreamer::kFaultChannelBase, 42, 0xFFFF);
  const auto records = TelemetryStreamer::decode(packet);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].code, 0xFFFF);
  EXPECT_EQ(records[0].watts, 0.0);
}

TEST(TelemetryDecode, ChannelJustBelowFaultBaseIsStillPower) {
  // 0xDF is the last ADC-style channel id: it must go through the analog
  // front end (non-zero watts for a non-zero code), unlike 0xE0.
  const auto below = TelemetryStreamer::decode(
      wire_record(TelemetryStreamer::kFaultChannelBase - 1, 1, 0x200));
  ASSERT_EQ(below.size(), 1u);
  EXPECT_GT(below[0].watts, 0.0);

  const auto at_base = TelemetryStreamer::decode(
      wire_record(TelemetryStreamer::kFaultChannelBase, 1, 0x200));
  ASSERT_EQ(at_base.size(), 1u);
  EXPECT_EQ(at_base[0].watts, 0.0);
}

TEST(TelemetryDecode, TruncatedTrailingRecordIsIgnored) {
  auto packet = wire_record(0, 5, 0x80);
  packet.push_back(0x01);  // 1 stray byte: not a whole record
  packet.push_back(0x02);
  const auto records = TelemetryStreamer::decode(packet);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].channel, 0);
}

}  // namespace
}  // namespace swallow
