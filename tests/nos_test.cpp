// Tests for the nOS-lite distributed service runtime: host RPC through
// the Ethernet bridge, core-to-core RPC, unknown-service handling and
// kernel shutdown.
#include <gtest/gtest.h>

#include "api/nos.h"
#include "arch/assembler.h"
#include "board/system.h"
#include "sim/simulator.h"

namespace swallow {
namespace {

const char* kDoubleService = R"(
      add   r0, r0, r0
      ret
)";

const char* kSumToNService = R"(
      ldc   r1, 0
  sum_loop:
      add   r1, r1, r0
      subi  r0, r0, 1
      bt    r0, sum_loop
      or    r0, r1, r1
      ret
)";

std::uint32_t decode_word(const std::vector<std::uint8_t>& packet) {
  EXPECT_EQ(packet.size(), 4u);
  return static_cast<std::uint32_t>(packet[0]) | (packet[1] << 8) |
         (packet[2] << 16) | (static_cast<std::uint32_t>(packet[3]) << 24);
}

class NosTest : public ::testing::Test {
 protected:
  Simulator sim;
};

TEST_F(NosTest, HostRpcThroughEthernetBridge) {
  SystemConfig cfg;
  cfg.ethernet_bridges = 1;
  SwallowSystem sys(sim, cfg);
  NosNode server(sys.core(1, 0, Layer::kVertical));
  const int svc_double = server.add_service("double", kDoubleService);
  const int svc_sum = server.add_service("sum_to_n", kSumToNService);
  server.start();

  std::vector<std::uint32_t> replies;
  sys.bridge(0).set_host_receiver([&](std::vector<std::uint8_t> p) {
    replies.push_back(decode_word(p));
  });

  const ResourceId reply_to = sys.bridge(0).chanend_id();
  sys.bridge(0).host_send(
      server.request_chanend(),
      NosNode::encode_request(reply_to, static_cast<std::uint32_t>(svc_double),
                              21));
  sys.bridge(0).host_send(
      server.request_chanend(),
      NosNode::encode_request(reply_to, static_cast<std::uint32_t>(svc_sum),
                              10));
  sim.run_until(milliseconds(5.0));
  ASSERT_FALSE(server.core().trapped()) << server.core().trap().message;
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0], 42u);
  EXPECT_EQ(replies[1], 55u);
}

TEST_F(NosTest, CoreToCoreRpc) {
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  NosNode server(sys.core(3, 1, Layer::kHorizontal));
  const int svc = server.add_service("double", kDoubleService);
  server.start();

  Core& client = sys.core(0, 0, Layer::kVertical);
  const std::string client_src = NosNode::client_source(
      server.request_chanend(), client.node_id(),
      static_cast<std::uint32_t>(svc), 1234);
  client.load(assemble(client_src));
  client.start();
  sim.run_until(milliseconds(5.0));
  ASSERT_FALSE(client.trapped()) << client.trap().message;
  ASSERT_TRUE(client.finished());
  EXPECT_EQ(client.peek_word(assemble(client_src).symbol("result") * 4),
            2468u);
}

TEST_F(NosTest, UnknownServiceIsDroppedKernelKeepsServing) {
  SystemConfig cfg;
  cfg.ethernet_bridges = 1;
  SwallowSystem sys(sim, cfg);
  NosNode server(sys.core(0, 1, Layer::kVertical));
  const int svc = server.add_service("double", kDoubleService);
  server.start();

  std::vector<std::uint32_t> replies;
  sys.bridge(0).set_host_receiver([&](std::vector<std::uint8_t> p) {
    replies.push_back(decode_word(p));
  });
  const ResourceId reply_to = sys.bridge(0).chanend_id();
  // Bogus index first, then a valid call: the kernel must survive.
  sys.bridge(0).host_send(server.request_chanend(),
                          NosNode::encode_request(reply_to, 99, 5));
  sys.bridge(0).host_send(
      server.request_chanend(),
      NosNode::encode_request(reply_to, static_cast<std::uint32_t>(svc), 8));
  sim.run_until(milliseconds(5.0));
  ASSERT_FALSE(server.core().trapped()) << server.core().trap().message;
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0], 16u);
}

TEST_F(NosTest, ShutdownServiceStopsTheKernel) {
  SystemConfig cfg;
  cfg.ethernet_bridges = 1;
  SwallowSystem sys(sim, cfg);
  NosNode server(sys.core(2, 1, Layer::kVertical));
  server.add_service("double", kDoubleService);
  server.start();

  sys.bridge(0).host_send(
      server.request_chanend(),
      NosNode::encode_request(0, NosNode::kShutdownService, 0));
  sim.run_until(milliseconds(5.0));
  EXPECT_TRUE(server.core().finished());
}

TEST_F(NosTest, RejectsEmptyOrLateConfiguration) {
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  NosNode server(sys.core(0, 0, Layer::kVertical));
  EXPECT_THROW(server.start(), Error);
  server.add_service("double", kDoubleService);
  server.start();
  EXPECT_THROW(server.add_service("late", kDoubleService), Error);
  EXPECT_THROW(server.start(), Error);
}

}  // namespace
}  // namespace swallow
