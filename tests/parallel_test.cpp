// Parallel sharded engine (src/sim/parallel_engine.*, SystemConfig::jobs):
// the conservative lookahead scheme must be *bit-identical* to the
// sequential reference engine — same per-core instruction counts, same
// energy-ledger doubles, byte-identical telemetry streams and identical
// network fault counters — for any worker count, with and without an
// active fault plan.  Plus SystemConfig::jobs validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "api/patterns.h"
#include "api/taskgen.h"
#include "board/system.h"
#include "board/telemetry.h"
#include "common/error.h"
#include "fault/fault.h"
#include "sim/simulator.h"

namespace swallow {
namespace {

/// The row-0 east FFC cable of the machine leaves the horizontal switch of
/// chip (3, 0) in direction East (board/system.cpp wiring).
const NodeId kCableTxNode = lattice_node_id(3, 0, Layer::kHorizontal);

/// A 6-stage pipeline laid east along chip row 0 (horizontal layer), so
/// one inter-stage hop (stage 2 -> 3) crosses the off-board cable — i.e. a
/// domain boundary under the parallel engine.
std::vector<Placement> row0_pipeline_places() {
  std::vector<Placement> places;
  for (int x = 1; x < 7; ++x) {
    places.push_back({x, 0, Layer::kHorizontal});
  }
  return places;
}

/// Everything the engines must agree on, bit for bit.
struct Fingerprint {
  std::vector<std::uint64_t> instructions;  // per core, flat index order
  std::array<Joules, static_cast<std::size_t>(EnergyAccount::kCount)>
      energy{};
  std::vector<std::uint8_t> telemetry;  // concatenated host packets
  std::uint64_t telemetry_packets = 0;
  FaultCounters faults;
  std::uint64_t quanta = 0;    // parallel runs only
  std::uint64_t messages = 0;  // parallel runs only
};

/// Engine configuration of one run: worker count, event-domain
/// granularity (PR 10: kChip/kCore refine the historical per-slice
/// domains) and synchronization mode.
struct MachineOpts {
  int jobs = 0;
  const FaultPlan* plan = nullptr;
  DomainGranularity granularity = DomainGranularity::kSlice;
  SyncMode sync = SyncMode::kExact;
  int sync_bound = 0;
};

/// One full machine run on a 2x2-slice, 64-core system: cross-cable
/// pipeline + telemetry out of a bridge + ADC sampling + loss integration,
/// optionally under a fault plan.  jobs = 0 selects the sequential
/// reference engine.
Fingerprint run_machine(const MachineOpts& o) {
  const FaultPlan* plan = o.plan;
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = 2;
  cfg.slices_y = 2;
  cfg.ethernet_bridges = 1;
  cfg.reliable_links = true;
  cfg.jobs = o.jobs;
  cfg.granularity = o.granularity;
  cfg.sync = o.sync;
  cfg.sync_bound = o.sync_bound;
  SwallowSystem sys(sim, cfg);
  sys.enable_loss_integration();
  sys.start_sampling(100'000.0);

  Fingerprint fp;
  sys.bridge(0).set_host_receiver([&fp](std::vector<std::uint8_t> p) {
    ++fp.telemetry_packets;
    fp.telemetry.insert(fp.telemetry.end(), p.begin(), p.end());
  });
  // Telemetry from slice (0,0) routes south across a cable into slice
  // (0,1)'s domain and on to the bridge.
  TelemetryStreamer streamer(sys.sim_for_slice(0, 0), sys.slice(0, 0),
                             sys.bridge(0));
  streamer.enable_fault_stream();
  streamer.start();

  FaultInjector injector(sys, plan != nullptr ? *plan : FaultPlan{});
  injector.arm();

  AppBuilder app(sys);
  PipelineConfig pcfg;
  pcfg.stages = 6;
  pcfg.items = 16;
  pcfg.work_per_item = 500;
  pcfg.bytes_per_item = 64;
  build_pipeline(app, pcfg, row0_pipeline_places());
  app.start();

  sys.run_until(milliseconds(2.0));
  sys.settle_energy();

  for (int i = 0; i < sys.core_count(); ++i) {
    fp.instructions.push_back(sys.core_by_index(i).instructions_retired());
  }
  EnergyLedger& led = sys.ledger();
  for (std::size_t a = 0; a < fp.energy.size(); ++a) {
    fp.energy[a] = led.total(static_cast<EnergyAccount>(a));
  }
  fp.faults = sys.network().total_fault_counters();
  if (sys.parallel()) {
    fp.quanta = sys.engine()->stats().quanta;
    fp.messages = sys.engine()->stats().messages;
  }
  return fp;
}

Fingerprint run_machine(int jobs, const FaultPlan* plan) {
  return run_machine(MachineOpts{.jobs = jobs, .plan = plan});
}

void expect_identical(const Fingerprint& ref, const Fingerprint& got,
                      const char* what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(ref.instructions.size(), got.instructions.size());
  for (std::size_t i = 0; i < ref.instructions.size(); ++i) {
    EXPECT_EQ(ref.instructions[i], got.instructions[i]) << "core " << i;
  }
  for (std::size_t a = 0; a < ref.energy.size(); ++a) {
    // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the claim is bit-identity, not
    // closeness — both engines partition and merge the ledger identically.
    EXPECT_EQ(ref.energy[a], got.energy[a])
        << to_string(static_cast<EnergyAccount>(a));
  }
  EXPECT_EQ(ref.telemetry_packets, got.telemetry_packets);
  EXPECT_EQ(ref.telemetry, got.telemetry);
  EXPECT_EQ(ref.faults.tokens_corrupted, got.faults.tokens_corrupted);
  EXPECT_EQ(ref.faults.tokens_dropped, got.faults.tokens_dropped);
  EXPECT_EQ(ref.faults.crc_rejects, got.faults.crc_rejects);
  EXPECT_EQ(ref.faults.naks_sent, got.faults.naks_sent);
  EXPECT_EQ(ref.faults.naks_received, got.faults.naks_received);
  EXPECT_EQ(ref.faults.retransmissions, got.faults.retransmissions);
  EXPECT_EQ(ref.faults.retry_timeouts, got.faults.retry_timeouts);
  EXPECT_EQ(ref.faults.links_marked_dead, got.faults.links_marked_dead);
  EXPECT_EQ(ref.faults.tokens_discarded_dead,
            got.faults.tokens_discarded_dead);
}

// --------------------------------------------------------- bit identity

TEST(ParallelEngine, BitIdenticalToSequentialFaultFree) {
  const Fingerprint seq = run_machine(0, nullptr);
  // The workload genuinely ran and crossed domains.
  std::uint64_t retired = 0;
  for (std::uint64_t n : seq.instructions) retired += n;
  ASSERT_GT(retired, 10'000u);
  ASSERT_GT(seq.telemetry_packets, 5u);

  for (int jobs : {1, 2, 4}) {
    const Fingerprint par = run_machine(jobs, nullptr);
    expect_identical(seq, par,
                     jobs == 1   ? "jobs=1"
                     : jobs == 2 ? "jobs=2"
                                 : "jobs=4");
    EXPECT_GT(par.quanta, 0u);
    EXPECT_GT(par.messages, 0u);  // cable traffic used the mailboxes
  }
}

TEST(ParallelEngine, BitIdenticalToSequentialUnderFaultPlan) {
  FaultPlan plan;
  plan.seed = 0x5EED;
  plan.corrupt_link(kCableTxNode, kDirEast, 3e-3);
  plan.link_outage(kCableTxNode, kDirEast, microseconds(400.0),
                   microseconds(30.0));
  plan.stall_switch(lattice_node_id(5, 0, Layer::kHorizontal),
                    microseconds(200.0), microseconds(50.0));
  plan.freeze_core(lattice_node_id(2, 0, Layer::kHorizontal),
                   microseconds(100.0), microseconds(150.0));

  const Fingerprint seq = run_machine(0, &plan);
  ASSERT_GT(seq.faults.tokens_corrupted, 0u);
  ASSERT_GT(seq.faults.retransmissions, 0u);

  for (int jobs : {2, 4}) {
    const Fingerprint par = run_machine(jobs, &plan);
    expect_identical(seq, par, jobs == 2 ? "jobs=2" : "jobs=4");
  }
}

// ------------------------------------------- fine-grained domains (PR 10)

/// Architectural agreement across granularities: everything exact except
/// the energy doubles, which are merged in a granularity-dependent order
/// and so only agree to last-ulp relative tolerance.
void expect_architectural(const Fingerprint& ref, const Fingerprint& got,
                          const char* what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(ref.instructions.size(), got.instructions.size());
  for (std::size_t i = 0; i < ref.instructions.size(); ++i) {
    EXPECT_EQ(ref.instructions[i], got.instructions[i]) << "core " << i;
  }
  for (std::size_t a = 0; a < ref.energy.size(); ++a) {
    const double tol = 1e-9 * std::max(std::abs(ref.energy[a]), 1e-12);
    EXPECT_NEAR(ref.energy[a], got.energy[a], tol)
        << to_string(static_cast<EnergyAccount>(a));
  }
  EXPECT_EQ(ref.telemetry_packets, got.telemetry_packets);
  EXPECT_EQ(ref.telemetry, got.telemetry);
  EXPECT_EQ(ref.faults.tokens_corrupted, got.faults.tokens_corrupted);
  EXPECT_EQ(ref.faults.retransmissions, got.faults.retransmissions);
  EXPECT_EQ(ref.faults.links_marked_dead, got.faults.links_marked_dead);
}

TEST(DomainGranularityTest, ChipAndCoreDomainsBitIdenticalFaultFree) {
  // Within one granularity the engine contract is unchanged: sequential
  // and parallel runs are bit-identical for any worker count — including
  // worker counts far above the 4-slice limit, which only the refined
  // partitioning admits (32 chip / 64 core partitions on 2x2 slices).
  for (DomainGranularity g :
       {DomainGranularity::kChip, DomainGranularity::kCore}) {
    const char* gname = g == DomainGranularity::kChip ? "chip" : "core";
    const Fingerprint seq = run_machine(MachineOpts{.granularity = g});
    for (int jobs : {1, 8, 16}) {
      const Fingerprint par =
          run_machine(MachineOpts{.jobs = jobs, .granularity = g});
      expect_identical(seq, par, gname);
      EXPECT_GT(par.quanta, 0u);
      EXPECT_GT(par.messages, 0u);
    }
    // And across granularities only the energy merge order may differ.
    expect_architectural(run_machine(MachineOpts{}), seq, gname);
  }
}

TEST(DomainGranularityTest, ChipAndCoreDomainsBitIdenticalUnderFaultPlan) {
  // Reroutes, link death and watchdog stalls must play out identically
  // when the afflicted links sit on chip/core domain boundaries instead of
  // slice boundaries.
  FaultPlan plan;
  plan.seed = 0x5EED;
  plan.corrupt_link(kCableTxNode, kDirEast, 3e-3);
  plan.link_outage(kCableTxNode, kDirEast, microseconds(400.0),
                   microseconds(30.0));
  plan.stall_switch(lattice_node_id(5, 0, Layer::kHorizontal),
                    microseconds(200.0), microseconds(50.0));
  plan.freeze_core(lattice_node_id(2, 0, Layer::kHorizontal),
                   microseconds(100.0), microseconds(150.0));

  const Fingerprint slice_seq = run_machine(0, &plan);
  for (DomainGranularity g :
       {DomainGranularity::kChip, DomainGranularity::kCore}) {
    const char* gname = g == DomainGranularity::kChip ? "chip" : "core";
    const Fingerprint seq =
        run_machine(MachineOpts{.plan = &plan, .granularity = g});
    ASSERT_GT(seq.faults.tokens_corrupted, 0u);
    ASSERT_GT(seq.faults.retransmissions, 0u);
    const Fingerprint par =
        run_machine(MachineOpts{.jobs = 8, .plan = &plan, .granularity = g});
    expect_identical(seq, par, gname);
    // The fault schedule itself is granularity-invariant.
    expect_architectural(slice_seq, seq, gname);
  }
}

// --------------------------------------------------- bounded sync (PR 10)

TEST(BoundedSyncTest, BoundedZeroIsExact) {
  // `--sync bounded:0` must degenerate to the exact engine, bit for bit.
  const Fingerprint exact = run_machine(
      MachineOpts{.jobs = 4, .granularity = DomainGranularity::kChip});
  const Fingerprint b0 = run_machine(
      MachineOpts{.jobs = 4,
                  .granularity = DomainGranularity::kChip,
                  .sync = SyncMode::kBounded,
                  .sync_bound = 0});
  expect_identical(exact, b0, "bounded:0");
}

TEST(BoundedSyncTest, BoundedRunsDeterministicAcrossWorkerCounts) {
  // Relaxed order may deviate from exact, but must not depend on the
  // worker count: the adaptive lookahead evolves in the serial merge
  // phase, so bounded runs are a deterministic function of (machine,
  // bound), not of scheduling.
  const Fingerprint one = run_machine(
      MachineOpts{.jobs = 1,
                  .granularity = DomainGranularity::kChip,
                  .sync = SyncMode::kBounded,
                  .sync_bound = 64});
  EXPECT_GT(one.quanta, 0u);
  for (int jobs : {4, 16}) {
    const Fingerprint par = run_machine(
        MachineOpts{.jobs = jobs,
                    .granularity = DomainGranularity::kChip,
                    .sync = SyncMode::kBounded,
                    .sync_bound = 64});
    expect_identical(one, par, jobs == 4 ? "jobs=4" : "jobs=16");
  }
}

TEST(BoundedSyncTest, BoundedConvergesToExactArchitecturally) {
  // The drift bound guarantee: per-core retired-instruction counts agree
  // with the exact engine exactly (the workload synchronizes through
  // blocking channel ops, so arrival-time skew never reaches architectural
  // state) and per-account energy stays within a small relative bound.
  const Fingerprint exact = run_machine(
      MachineOpts{.jobs = 4, .granularity = DomainGranularity::kChip});
  for (int bound : {16, 64}) {
    SCOPED_TRACE(bound);
    const Fingerprint b = run_machine(
        MachineOpts{.jobs = 4,
                    .granularity = DomainGranularity::kChip,
                    .sync = SyncMode::kBounded,
                    .sync_bound = bound});
    ASSERT_EQ(exact.instructions.size(), b.instructions.size());
    for (std::size_t i = 0; i < exact.instructions.size(); ++i) {
      EXPECT_EQ(exact.instructions[i], b.instructions[i]) << "core " << i;
    }
    for (std::size_t a = 0; a < exact.energy.size(); ++a) {
      const double tol = 0.02 * std::max(std::abs(exact.energy[a]), 1e-12);
      EXPECT_NEAR(exact.energy[a], b.energy[a], tol)
          << to_string(static_cast<EnergyAccount>(a));
    }
    EXPECT_EQ(exact.telemetry_packets, b.telemetry_packets);
  }
}

// ----------------------------------------------------------- validation

TEST(ParallelEngine, JobsAboveSliceCountIsRejected) {
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = 2;
  cfg.slices_y = 2;
  cfg.jobs = 5;
  try {
    SwallowSystem sys(sim, cfg);
    FAIL() << "jobs=5 on a 4-slice machine must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("jobs"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("4"), std::string::npos);
  }
}

TEST(ParallelEngine, FineGranularityAdmitsMoreJobs) {
  // jobs=5 is rejected at slice granularity (4 partitions) but fine at
  // chip granularity (32 partitions on the same grid).
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = 2;
  cfg.slices_y = 2;
  cfg.jobs = 5;
  cfg.granularity = DomainGranularity::kChip;
  SwallowSystem sys(sim, cfg);
  EXPECT_TRUE(sys.parallel());
}

TEST(ParallelEngine, NegativeSyncBoundIsRejected) {
  Simulator sim;
  SystemConfig cfg;
  cfg.jobs = 1;
  cfg.sync = SyncMode::kBounded;
  cfg.sync_bound = -3;
  EXPECT_THROW(SwallowSystem sys(sim, cfg), Error);
}

TEST(ParallelEngine, NonzeroBoundRequiresBoundedMode) {
  Simulator sim;
  SystemConfig cfg;
  cfg.jobs = 1;
  cfg.sync = SyncMode::kExact;
  cfg.sync_bound = 16;
  EXPECT_THROW(SwallowSystem sys(sim, cfg), Error);
}

TEST(ParallelEngine, BoundedModeRequiresParallelEngine) {
  Simulator sim;
  SystemConfig cfg;
  cfg.jobs = 0;
  cfg.sync = SyncMode::kBounded;
  cfg.sync_bound = 16;
  EXPECT_THROW(SwallowSystem sys(sim, cfg), Error);
}

TEST(ParallelEngine, NegativeJobsIsRejected) {
  Simulator sim;
  SystemConfig cfg;
  cfg.jobs = -1;
  EXPECT_THROW(SwallowSystem sys(sim, cfg), Error);
}

TEST(ParallelEngine, SequentialIsTheDefault) {
  Simulator sim;
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  EXPECT_FALSE(sys.parallel());
  EXPECT_EQ(sys.engine(), nullptr);
  EXPECT_EQ(&sys.sim_for_slice(0, 0), &sim);
}

}  // namespace
}  // namespace swallow
