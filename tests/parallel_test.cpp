// Parallel sharded engine (src/sim/parallel_engine.*, SystemConfig::jobs):
// the conservative lookahead scheme must be *bit-identical* to the
// sequential reference engine — same per-core instruction counts, same
// energy-ledger doubles, byte-identical telemetry streams and identical
// network fault counters — for any worker count, with and without an
// active fault plan.  Plus SystemConfig::jobs validation.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "api/patterns.h"
#include "api/taskgen.h"
#include "board/system.h"
#include "board/telemetry.h"
#include "common/error.h"
#include "fault/fault.h"
#include "sim/simulator.h"

namespace swallow {
namespace {

/// The row-0 east FFC cable of the machine leaves the horizontal switch of
/// chip (3, 0) in direction East (board/system.cpp wiring).
const NodeId kCableTxNode = lattice_node_id(3, 0, Layer::kHorizontal);

/// A 6-stage pipeline laid east along chip row 0 (horizontal layer), so
/// one inter-stage hop (stage 2 -> 3) crosses the off-board cable — i.e. a
/// domain boundary under the parallel engine.
std::vector<Placement> row0_pipeline_places() {
  std::vector<Placement> places;
  for (int x = 1; x < 7; ++x) {
    places.push_back({x, 0, Layer::kHorizontal});
  }
  return places;
}

/// Everything the engines must agree on, bit for bit.
struct Fingerprint {
  std::vector<std::uint64_t> instructions;  // per core, flat index order
  std::array<Joules, static_cast<std::size_t>(EnergyAccount::kCount)>
      energy{};
  std::vector<std::uint8_t> telemetry;  // concatenated host packets
  std::uint64_t telemetry_packets = 0;
  FaultCounters faults;
  std::uint64_t quanta = 0;    // parallel runs only
  std::uint64_t messages = 0;  // parallel runs only
};

/// One full machine run on a 2x2-slice, 64-core system: cross-cable
/// pipeline + telemetry out of a bridge + ADC sampling + loss integration,
/// optionally under a fault plan.  jobs = 0 selects the sequential
/// reference engine.
Fingerprint run_machine(int jobs, const FaultPlan* plan) {
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = 2;
  cfg.slices_y = 2;
  cfg.ethernet_bridges = 1;
  cfg.reliable_links = true;
  cfg.jobs = jobs;
  SwallowSystem sys(sim, cfg);
  sys.enable_loss_integration();
  sys.start_sampling(100'000.0);

  Fingerprint fp;
  sys.bridge(0).set_host_receiver([&fp](std::vector<std::uint8_t> p) {
    ++fp.telemetry_packets;
    fp.telemetry.insert(fp.telemetry.end(), p.begin(), p.end());
  });
  // Telemetry from slice (0,0) routes south across a cable into slice
  // (0,1)'s domain and on to the bridge.
  TelemetryStreamer streamer(sys.sim_for_slice(0, 0), sys.slice(0, 0),
                             sys.bridge(0));
  streamer.enable_fault_stream();
  streamer.start();

  FaultInjector injector(sys, plan != nullptr ? *plan : FaultPlan{});
  injector.arm();

  AppBuilder app(sys);
  PipelineConfig pcfg;
  pcfg.stages = 6;
  pcfg.items = 16;
  pcfg.work_per_item = 500;
  pcfg.bytes_per_item = 64;
  build_pipeline(app, pcfg, row0_pipeline_places());
  app.start();

  sys.run_until(milliseconds(2.0));
  sys.settle_energy();

  for (int i = 0; i < sys.core_count(); ++i) {
    fp.instructions.push_back(sys.core_by_index(i).instructions_retired());
  }
  EnergyLedger& led = sys.ledger();
  for (std::size_t a = 0; a < fp.energy.size(); ++a) {
    fp.energy[a] = led.total(static_cast<EnergyAccount>(a));
  }
  fp.faults = sys.network().total_fault_counters();
  if (sys.parallel()) {
    fp.quanta = sys.engine()->stats().quanta;
    fp.messages = sys.engine()->stats().messages;
  }
  return fp;
}

void expect_identical(const Fingerprint& ref, const Fingerprint& got,
                      const char* what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(ref.instructions.size(), got.instructions.size());
  for (std::size_t i = 0; i < ref.instructions.size(); ++i) {
    EXPECT_EQ(ref.instructions[i], got.instructions[i]) << "core " << i;
  }
  for (std::size_t a = 0; a < ref.energy.size(); ++a) {
    // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the claim is bit-identity, not
    // closeness — both engines partition and merge the ledger identically.
    EXPECT_EQ(ref.energy[a], got.energy[a])
        << to_string(static_cast<EnergyAccount>(a));
  }
  EXPECT_EQ(ref.telemetry_packets, got.telemetry_packets);
  EXPECT_EQ(ref.telemetry, got.telemetry);
  EXPECT_EQ(ref.faults.tokens_corrupted, got.faults.tokens_corrupted);
  EXPECT_EQ(ref.faults.tokens_dropped, got.faults.tokens_dropped);
  EXPECT_EQ(ref.faults.crc_rejects, got.faults.crc_rejects);
  EXPECT_EQ(ref.faults.naks_sent, got.faults.naks_sent);
  EXPECT_EQ(ref.faults.naks_received, got.faults.naks_received);
  EXPECT_EQ(ref.faults.retransmissions, got.faults.retransmissions);
  EXPECT_EQ(ref.faults.retry_timeouts, got.faults.retry_timeouts);
  EXPECT_EQ(ref.faults.links_marked_dead, got.faults.links_marked_dead);
  EXPECT_EQ(ref.faults.tokens_discarded_dead,
            got.faults.tokens_discarded_dead);
}

// --------------------------------------------------------- bit identity

TEST(ParallelEngine, BitIdenticalToSequentialFaultFree) {
  const Fingerprint seq = run_machine(0, nullptr);
  // The workload genuinely ran and crossed domains.
  std::uint64_t retired = 0;
  for (std::uint64_t n : seq.instructions) retired += n;
  ASSERT_GT(retired, 10'000u);
  ASSERT_GT(seq.telemetry_packets, 5u);

  for (int jobs : {1, 2, 4}) {
    const Fingerprint par = run_machine(jobs, nullptr);
    expect_identical(seq, par,
                     jobs == 1   ? "jobs=1"
                     : jobs == 2 ? "jobs=2"
                                 : "jobs=4");
    EXPECT_GT(par.quanta, 0u);
    EXPECT_GT(par.messages, 0u);  // cable traffic used the mailboxes
  }
}

TEST(ParallelEngine, BitIdenticalToSequentialUnderFaultPlan) {
  FaultPlan plan;
  plan.seed = 0x5EED;
  plan.corrupt_link(kCableTxNode, kDirEast, 3e-3);
  plan.link_outage(kCableTxNode, kDirEast, microseconds(400.0),
                   microseconds(30.0));
  plan.stall_switch(lattice_node_id(5, 0, Layer::kHorizontal),
                    microseconds(200.0), microseconds(50.0));
  plan.freeze_core(lattice_node_id(2, 0, Layer::kHorizontal),
                   microseconds(100.0), microseconds(150.0));

  const Fingerprint seq = run_machine(0, &plan);
  ASSERT_GT(seq.faults.tokens_corrupted, 0u);
  ASSERT_GT(seq.faults.retransmissions, 0u);

  for (int jobs : {2, 4}) {
    const Fingerprint par = run_machine(jobs, &plan);
    expect_identical(seq, par, jobs == 2 ? "jobs=2" : "jobs=4");
  }
}

// ----------------------------------------------------------- validation

TEST(ParallelEngine, JobsAboveSliceCountIsRejected) {
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = 2;
  cfg.slices_y = 2;
  cfg.jobs = 5;
  try {
    SwallowSystem sys(sim, cfg);
    FAIL() << "jobs=5 on a 4-slice machine must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("jobs"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("4"), std::string::npos);
  }
}

TEST(ParallelEngine, NegativeJobsIsRejected) {
  Simulator sim;
  SystemConfig cfg;
  cfg.jobs = -1;
  EXPECT_THROW(SwallowSystem sys(sim, cfg), Error);
}

TEST(ParallelEngine, SequentialIsTheDefault) {
  Simulator sim;
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  EXPECT_FALSE(sys.parallel());
  EXPECT_EQ(sys.engine(), nullptr);
  EXPECT_EQ(&sys.sim_for_slice(0, 0), &sim);
}

}  // namespace
}  // namespace swallow
