// Tests for the task-level programming layer: code generation, channel
// wiring, and the pipeline / farm / ring / bisection patterns end-to-end
// on the full system model.
#include <gtest/gtest.h>

#include "api/patterns.h"
#include "api/taskgen.h"
#include "board/system.h"
#include "sim/simulator.h"

namespace swallow {
namespace {

class ApiTest : public ::testing::Test {
 protected:
  Simulator sim;

  std::unique_ptr<SwallowSystem> make_system(int sx = 1, int sy = 1) {
    SystemConfig cfg;
    cfg.slices_x = sx;
    cfg.slices_y = sy;
    return std::make_unique<SwallowSystem>(sim, cfg);
  }
};

TEST_F(ApiTest, SingleComputeTaskFinishes) {
  auto sys = make_system();
  AppBuilder app(*sys);
  TaskSpec spec;
  spec.steps = {TaskStep::compute(9000)};
  app.add_task(spec, 0, 0, Layer::kVertical);
  app.start();
  ASSERT_TRUE(app.run_to_completion(milliseconds(5.0)));
  // ~9000 instructions at one thread (125 MIPS) ~= 72 us, plus setup.
  EXPECT_GT(app.task_core(0).instructions_retired(), 8500u);
  EXPECT_GT(to_microseconds(app.completion_time()), 60.0);
  EXPECT_LT(to_microseconds(app.completion_time()), 120.0);
}

TEST_F(ApiTest, ProducerConsumerMovesData) {
  auto sys = make_system();
  AppBuilder app(*sys);
  TaskSpec tx, rx;
  const int producer = app.add_task(tx, 0, 0, Layer::kVertical);
  const int consumer = app.add_task(rx, 3, 1, Layer::kHorizontal);
  const int ch = app.connect(producer, consumer);
  app.set_steps(producer, {TaskStep::send(ch, 256)});
  app.set_steps(consumer, {TaskStep::recv(ch, 256)});
  app.start();
  ASSERT_TRUE(app.run_to_completion(milliseconds(10.0)));
  EXPECT_EQ(app.bytes_sent(producer), 256u);
  // The payload crossed both board link classes of the lattice.
  EXPECT_GT(sys->ledger().total(EnergyAccount::kLinkBoardVertical), 0.0);
  EXPECT_GT(sys->ledger().total(EnergyAccount::kLinkBoardHorizontal), 0.0);
}

TEST_F(ApiTest, GeneratedProgramIsInspectable) {
  auto sys = make_system();
  AppBuilder app(*sys);
  TaskSpec tx, rx;
  const int a = app.add_task(tx, 0, 0, Layer::kVertical);
  const int b = app.add_task(rx, 1, 0, Layer::kVertical);
  const int ch = app.connect(a, b);
  app.set_steps(a, {TaskStep::compute(300), TaskStep::send(ch, 64)});
  app.set_steps(b, {TaskStep::recv(ch, 64)});
  app.start();
  EXPECT_NE(app.program(a).find("out r1, r3"), std::string::npos);
  EXPECT_NE(app.program(a).find("outct r1, 1"), std::string::npos);
  EXPECT_NE(app.program(b).find("in r3, r1"), std::string::npos);
  EXPECT_NE(app.program(b).find("chkct r1, 1"), std::string::npos);
  ASSERT_TRUE(app.run_to_completion(milliseconds(10.0)));
}

TEST_F(ApiTest, MultiIterationRoundTrip) {
  auto sys = make_system();
  AppBuilder app(*sys);
  TaskSpec tx, rx;
  tx.iterations = 10;
  rx.iterations = 10;
  const int a = app.add_task(tx, 0, 0, Layer::kVertical);
  const int b = app.add_task(rx, 0, 0, Layer::kHorizontal);  // same chip
  const int ch = app.connect(a, b);
  app.set_steps(a, {TaskStep::compute(500), TaskStep::send(ch, 32)});
  app.set_steps(b, {TaskStep::recv(ch, 32), TaskStep::compute(500)});
  app.start();
  ASSERT_TRUE(app.run_to_completion(milliseconds(10.0)));
  EXPECT_EQ(app.bytes_sent(a), 320u);
}

TEST_F(ApiTest, PipelinePatternCompletes) {
  auto sys = make_system();
  AppBuilder app(*sys);
  PipelineConfig pcfg;
  pcfg.stages = 4;
  pcfg.items = 8;
  pcfg.work_per_item = 1500;
  pcfg.bytes_per_item = 64;
  std::vector<Placement> places;
  for (int i = 0; i < pcfg.stages; ++i) {
    places.push_back(linear_placement(sys->config(), i));
  }
  const auto tasks = build_pipeline(app, pcfg, places);
  ASSERT_EQ(tasks.size(), 4u);
  app.start();
  ASSERT_TRUE(app.run_to_completion(milliseconds(50.0)));
  // Interior stages moved items x bytes.
  EXPECT_EQ(app.bytes_sent(tasks[1]), 8u * 64u);
}

TEST_F(ApiTest, FarmPatternCompletes) {
  auto sys = make_system();
  AppBuilder app(*sys);
  FarmConfig fcfg;
  fcfg.workers = 3;
  fcfg.rounds = 5;
  fcfg.work_per_item = 2000;
  fcfg.bytes_per_item = 32;
  std::vector<Placement> places;
  for (int i = 0; i <= fcfg.workers; ++i) {
    places.push_back(linear_placement(sys->config(), i));
  }
  const auto tasks = build_farm(app, fcfg, places);
  ASSERT_EQ(tasks.size(), 4u);
  app.start();
  ASSERT_TRUE(app.run_to_completion(milliseconds(50.0)));
  // The master scattered to every worker every round.
  EXPECT_EQ(app.bytes_sent(tasks[0]), 3u * 5u * 32u);
}

TEST_F(ApiTest, RingPatternCompletes) {
  auto sys = make_system();
  AppBuilder app(*sys);
  RingConfig rcfg;
  rcfg.tasks = 6;
  rcfg.rounds = 4;
  rcfg.bytes_per_round = 32;
  rcfg.work_per_round = 1000;
  std::vector<Placement> places;
  for (int i = 0; i < rcfg.tasks; ++i) {
    places.push_back(linear_placement(sys->config(), i));
  }
  const auto tasks = build_ring(app, rcfg, places);
  app.start();
  ASSERT_TRUE(app.run_to_completion(milliseconds(50.0)));
  for (int t : tasks) {
    EXPECT_EQ(app.bytes_sent(t), 4u * 32u);
  }
}

TEST_F(ApiTest, TreeReducePatternCompletes) {
  auto sys = make_system();
  AppBuilder app(*sys);
  TreeReduceConfig tcfg;
  tcfg.leaves = 8;
  tcfg.fanout = 2;
  std::vector<Placement> places;
  for (int i = 0; i < 15; ++i) {
    places.push_back(linear_placement(sys->config(), i));
  }
  const auto tasks = build_tree_reduce(app, tcfg, places);
  ASSERT_EQ(tasks.size(), 15u);  // 8 + 4 + 2 + 1
  app.start();
  ASSERT_TRUE(app.run_to_completion(milliseconds(100.0)));
  // Every non-root task sent exactly one value up.
  int senders = 0;
  for (int t : tasks) senders += app.bytes_sent(t) == tcfg.bytes_per_value;
  EXPECT_EQ(senders, 14);
  EXPECT_EQ(app.bytes_sent(tasks.back()), 0u);  // the root only receives
}

TEST_F(ApiTest, TreeReduceBeatsFlatGatherOnCombineWork) {
  // With expensive combining, a binary tree parallelises the reduction;
  // a flat gather serialises all combines at the root.
  const std::uint64_t combine = 20000;
  auto run_tree = [&]() {
    Simulator sim;
    SystemConfig cfg;
    SwallowSystem sys(sim, cfg);
    AppBuilder app(sys);
    TreeReduceConfig tcfg;
    tcfg.leaves = 8;
    tcfg.fanout = 2;
    tcfg.combine_work = combine;
    std::vector<Placement> places;
    for (int i = 0; i < 15; ++i) {
      places.push_back(linear_placement(sys.config(), i));
    }
    build_tree_reduce(app, tcfg, places);
    app.start();
    EXPECT_TRUE(app.run_to_completion(milliseconds(200.0)));
    return app.completion_time();
  };
  auto run_flat = [&]() {
    Simulator sim;
    SystemConfig cfg;
    SwallowSystem sys(sim, cfg);
    AppBuilder app(sys);
    // 8 leaves all sending straight to one root.
    TaskSpec root_spec;
    const int root = app.add_task(root_spec, 3, 1, Layer::kHorizontal);
    std::vector<TaskStep> root_steps;
    for (int i = 0; i < 8; ++i) {
      TaskSpec leaf;
      const Placement p = linear_placement(sys.config(), i);
      const int t = app.add_task(leaf, p.chip_x, p.chip_y, p.layer);
      const int ch = app.connect(t, root);
      app.set_steps(t, {TaskStep::compute(4000), TaskStep::send(ch, 4)});
      root_steps.push_back(TaskStep::recv(ch, 4));
      root_steps.push_back(TaskStep::compute(combine));
    }
    app.set_steps(root, root_steps);
    app.start();
    EXPECT_TRUE(app.run_to_completion(milliseconds(200.0)));
    return app.completion_time();
  };
  const TimePs tree = run_tree();
  const TimePs flat = run_flat();
  EXPECT_LT(static_cast<double>(tree), 0.8 * static_cast<double>(flat));
}

TEST_F(ApiTest, BisectionStressSaturatesVerticalLinks) {
  auto sys = make_system();
  AppBuilder app(*sys);
  BisectionConfig bcfg;
  bcfg.bytes_per_pair = 1024;
  const auto senders = build_bisection_stress(app, sys->config(), bcfg);
  EXPECT_EQ(senders.size(), 8u);  // 4 columns x 1 row-pair x 2 layers
  app.start();
  ASSERT_TRUE(app.run_to_completion(milliseconds(50.0)));
  // All pair traffic crossed the slice's vertical links.
  EXPECT_GT(sys->ledger().total(EnergyAccount::kLinkBoardVertical), 0.0);
}

TEST_F(ApiTest, CoLocatedTasksRunAsThreads) {
  // Four tasks on one core exchange with four tasks on another core; the
  // sender core runs them as four hardware threads sharing issue slots.
  auto sys = make_system();
  AppBuilder app(*sys);
  std::vector<int> senders, receivers;
  for (int i = 0; i < 4; ++i) {
    TaskSpec tx, rx;
    senders.push_back(app.add_task(tx, 0, 0, Layer::kVertical));
    receivers.push_back(app.add_task(rx, 0, 1, Layer::kVertical));
    const int ch = app.connect(senders.back(), receivers.back());
    app.set_steps(senders.back(),
                  {TaskStep::compute(1000), TaskStep::send(ch, 128)});
    app.set_steps(receivers.back(), {TaskStep::recv(ch, 128)});
  }
  app.start();
  ASSERT_TRUE(app.run_to_completion(milliseconds(50.0)));
  for (int s : senders) EXPECT_EQ(app.bytes_sent(s), 128u);
  // All four sender tasks shared one core (same Core object).
  EXPECT_EQ(&app.task_core(senders[0]), &app.task_core(senders[3]));
}

TEST_F(ApiTest, CoLocatedProducerConsumerOnOneCore) {
  // Producer and consumer threads on the same core: core-local
  // communication through the core's own switch (§V.D's cheapest scope).
  auto sys = make_system();
  AppBuilder app(*sys);
  TaskSpec tx, rx;
  const int a = app.add_task(tx, 2, 0, Layer::kHorizontal);
  const int b = app.add_task(rx, 2, 0, Layer::kHorizontal);
  const int ch = app.connect(a, b);
  app.set_steps(a, {TaskStep::send(ch, 1024)});
  app.set_steps(b, {TaskStep::recv(ch, 1024)});
  app.start();
  ASSERT_TRUE(app.run_to_completion(milliseconds(50.0)));
  // No board links were touched: everything stayed inside the node.
  EXPECT_EQ(sys->ledger().total(EnergyAccount::kLinkBoardVertical), 0.0);
  EXPECT_EQ(sys->ledger().total(EnergyAccount::kLinkBoardHorizontal), 0.0);
}

TEST_F(ApiTest, DelayStepRateLimitsATask) {
  // 20 iterations of (tiny work + 50 us sleep) ~ 1 ms total; the blocked
  // thread burns idle power only.
  auto sys = make_system();
  AppBuilder app(*sys);
  TaskSpec spec;
  spec.iterations = 20;
  spec.steps = {TaskStep::compute(100), TaskStep::delay_us(50)};
  const int t = app.add_task(spec, 0, 0, Layer::kVertical);
  app.start();
  ASSERT_TRUE(app.run_to_completion(milliseconds(10.0)));
  const double ms = to_seconds(app.completion_time()) * 1e3;
  EXPECT_GT(ms, 0.99);
  EXPECT_LT(ms, 1.15);
  // ~2600 instructions retired, not millions: the delays really blocked.
  EXPECT_LT(app.task_core(t).instructions_retired(), 4000u);
}

TEST_F(ApiTest, TooManyTasksPerCoreRejected) {
  auto sys = make_system();
  AppBuilder app(*sys);
  for (int i = 0; i < 9; ++i) {
    TaskSpec spec;
    spec.steps = {TaskStep::compute(10)};
    app.add_task(spec, 0, 0, Layer::kVertical);
  }
  EXPECT_THROW(app.start(), Error);
}

TEST_F(ApiTest, PatternsRejectBadConfigs) {
  auto sys = make_system();
  AppBuilder app(*sys);
  PipelineConfig one_stage;
  one_stage.stages = 1;
  EXPECT_THROW(build_pipeline(app, one_stage, {Placement{}}), Error);
  TaskSpec spec;
  spec.iterations = 0;
  EXPECT_THROW(app.add_task(spec, 0, 0, Layer::kVertical), Error);
  EXPECT_THROW(app.patch_channel(99, TaskStep::Op::kSend, 0), std::exception);
}

}  // namespace
}  // namespace swallow
