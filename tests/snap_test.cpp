// Snapshot/restore tests (PR 6 tentpole): round-trip bit-identity across
// engines, structured refusal of corrupt or foreign snapshots, crash-safe
// file behaviour and checkpoint rotation.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/assembler.h"
#include "board/system.h"
#include "check/differ.h"
#include "check/snapdiff.h"
#include "common/stateio.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "snap/machine.h"
#include "snap/snapfile.h"

namespace swallow {
namespace {

// A looping ping/pong pair: enough round trips (~300 us) that snapshots
// land mid-conversation, with tokens in flight and threads blocking.
constexpr const char* kPingSrc = R"(
    getr  r0, 2
    ldc   r1, 1
    ldch  r1, 2
    setd  r0, r1
    ldc   r4, 500
loop:
    out   r0, r4
    outct r0, 1
    in    r3, r0
    chkct r0, 1
    ldc   r5, 1
    sub   r4, r4, r5
    bt    r4, loop
    printi r3
    texit
)";

constexpr const char* kPongSrc = R"(
    getr  r0, 2
    ldc   r1, 0
    ldch  r1, 2
    setd  r0, r1
    ldc   r4, 500
loop:
    in    r2, r0
    chkct r0, 1
    out   r0, r2
    outct r0, 1
    ldc   r5, 1
    sub   r4, r4, r5
    bt    r4, loop
    texit
)";

// One complete single-slice machine in the restore-ready (unstarted,
// unarmed) state.  `start()` is the fresh-run path.
struct Machine {
  TraceSession session;
  Simulator sim;
  SwallowSystem sys;
  std::unique_ptr<FaultInjector> injector;

  explicit Machine(bool obs = true, bool faults = true,
                   std::uint64_t fault_seed = 11)
      : session(obs ? TraceConfig{.tracing = true, .metrics = true,
                                  .profile = true}
                    : TraceConfig{}),
        sys(sim, [] {
          SystemConfig cfg;
          cfg.reliable_links = true;
          return cfg;
        }()) {
    if (obs) sys.attach_observability(session);
    if (faults) {
      FaultPlan plan;
      plan.seed = fault_seed;
      plan.corrupt_link(0, -1, 0.02);
      injector = std::make_unique<FaultInjector>(sys, plan);
    }
  }

  SnapTargets targets() {
    return SnapTargets{&sys, session.active() ? &session : nullptr,
                       injector.get()};
  }

  void start() {
    if (injector) injector->arm();
    const Image ping = assemble(kPingSrc);
    const Image pong = assemble(kPongSrc);
    sys.find_core(0)->load(ping);
    sys.find_core(1)->load(pong);
    sys.find_core(0)->start(ping.entry);
    sys.find_core(1)->start(pong.entry);
    sys.start_sampling();
  }

  void run_to(TimePs target) {
    TimePs t = sys.now();
    while (t < target) {
      t = std::min<TimePs>(t + microseconds(50.0), target);
      sys.run_until(t);
    }
  }
};

SnapError::Code code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const SnapError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected a SnapError";
  return SnapError::Code::kIoError;
}

// ----- Round-trip bit-identity -----

// The keystone, at full strength: run-to-T / snapshot / restore / run-to-2T
// renders the identical final machine — every register, SRAM word, fifo,
// rng stream, energy double, fault counter, metric and trace event — as an
// uninterrupted run, on the sequential engine and on every parallel shard
// count, with an armed fault plan and full observability.
TEST(SnapRoundtrip, BitIdenticalAcrossEngines) {
  const SourceSet sources = render_sources(differ_generate(3));
  for (int jobs : {0, 1, 2, 4}) {
    SnapRoundtripOptions opts;
    opts.jobs = jobs;
    opts.tracing = true;
    opts.faults = true;
    EXPECT_EQ(snap_roundtrip(sources, opts), "") << "jobs=" << jobs;
  }
}

// Same property stated on the observables a user sees, not snapshot bytes:
// retired counts, bitwise energy totals, console output, rendered trace
// and metrics JSON.
TEST(SnapRoundtrip, ObservablesMatchUninterruptedRun) {
  const TimePs half = microseconds(80.0);

  Machine a;
  a.start();
  a.run_to(2 * half);

  Machine b;
  b.start();
  b.run_to(half);
  const SnapshotFile mid =
      SnapshotFile::decode(save_machine(b.targets()).encode());

  Machine c;
  restore_machine(mid, c.targets());
  EXPECT_EQ(c.sys.now(), half);
  c.run_to(2 * half);

  for (int i = 0; i < 2; ++i) {
    SCOPED_TRACE(i);
    Core& ca = *a.sys.find_core(static_cast<NodeId>(i));
    Core& cc = *c.sys.find_core(static_cast<NodeId>(i));
    EXPECT_EQ(ca.instructions_retired(), cc.instructions_retired());
    EXPECT_EQ(ca.console(), cc.console());
    EXPECT_EQ(ca.thread_regs(0), cc.thread_regs(0));
  }
  for (int acc = 0; acc < static_cast<int>(EnergyAccount::kCount); ++acc) {
    EXPECT_EQ(a.sys.ledger().total(static_cast<EnergyAccount>(acc)),
              c.sys.ledger().total(static_cast<EnergyAccount>(acc)))
        << "energy account " << acc << " drifted (must be bit-identical)";
  }
  a.sys.finish_observability();
  c.sys.finish_observability();
  EXPECT_EQ(a.session.chrome_json(), c.session.chrome_json());
  EXPECT_EQ(a.session.metrics().dump_json(), c.session.metrics().dump_json());
  EXPECT_EQ(a.session.profiler().collapsed(), c.session.profiler().collapsed());
}

// Restoring twice from the same snapshot yields the same future: snapshots
// are values, not live references into the saving machine.
TEST(SnapRoundtrip, SnapshotIsReusable) {
  Machine b;
  b.start();
  b.run_to(microseconds(80.0));
  const SnapshotFile mid = save_machine(b.targets());

  std::string first;
  for (int round = 0; round < 2; ++round) {
    Machine c;
    restore_machine(mid, c.targets());
    c.run_to(microseconds(160.0));
    const std::vector<std::uint8_t> image =
        save_machine(c.targets()).encode();
    const std::string bytes(image.begin(), image.end());
    if (round == 0) {
      first = bytes;
    } else {
      EXPECT_EQ(first == bytes, true) << "second restore diverged";
    }
  }
}

// Bounded-sync machines (PR 10): between run_until chop points the
// domains drift apart, but every chop ends on a skew-zero fence, so
// save_machine succeeds there (the skew guard in kMeta never fires from
// the public API) and the restored machine — including the engine's
// adaptive lookahead state, which rides in kMeta — replays a byte-
// identical future.
TEST(SnapRoundtrip, BoundedSyncSnapshotFencesAndRoundTrips) {
  const auto config = [] {
    SystemConfig cfg;
    cfg.reliable_links = true;
    cfg.jobs = 4;
    cfg.granularity = DomainGranularity::kChip;
    cfg.sync = SyncMode::kBounded;
    cfg.sync_bound = 64;
    return cfg;
  };
  const TimePs half = microseconds(80.0);
  const Image ping = assemble(kPingSrc);
  const Image pong = assemble(kPongSrc);
  const auto start = [&](SwallowSystem& sys) {
    sys.find_core(0)->load(ping);
    sys.find_core(1)->load(pong);
    sys.find_core(0)->start(ping.entry);
    sys.find_core(1)->start(pong.entry);
  };

  // Uninterrupted reference run.
  Simulator sim_a;
  SwallowSystem a(sim_a, config());
  start(a);
  a.run_until(2 * half);
  const std::vector<std::uint8_t> full_a = save_machine(
      SnapTargets{&a, nullptr, nullptr}).encode();

  // Interrupted run: snapshot at the chop point (a skew-zero fence).
  Simulator sim_b;
  SwallowSystem b(sim_b, config());
  start(b);
  b.run_until(half);
  const SnapshotFile mid = SnapshotFile::decode(
      save_machine(SnapTargets{&b, nullptr, nullptr}).encode());

  Simulator sim_c;
  SwallowSystem c(sim_c, config());
  restore_machine(mid, SnapTargets{&c, nullptr, nullptr});
  EXPECT_EQ(c.now(), half);
  c.run_until(2 * half);
  const std::vector<std::uint8_t> full_c = save_machine(
      SnapTargets{&c, nullptr, nullptr}).encode();

  // Byte-identical final snapshots: architectural state, energy doubles
  // AND the engine's sync counters all survived the round trip.
  EXPECT_EQ(full_a == full_c, true) << "restored bounded run diverged";
}

// A bounded-mode snapshot refuses to restore into an exact-mode machine
// (and vice versa): sync mode, bound and granularity are part of the
// config hash.
TEST(SnapRoundtrip, SyncConfigIsPartOfTheMachineIdentity) {
  const auto config = [](SyncMode sync, int bound) {
    SystemConfig cfg;
    cfg.reliable_links = true;
    cfg.jobs = 4;
    cfg.granularity = DomainGranularity::kChip;
    cfg.sync = sync;
    cfg.sync_bound = bound;
    return cfg;
  };
  Simulator sim_a;
  SwallowSystem a(sim_a, config(SyncMode::kBounded, 64));
  a.run_until(microseconds(10.0));
  const SnapshotFile snap = save_machine(SnapTargets{&a, nullptr, nullptr});

  Simulator sim_b;
  SwallowSystem b(sim_b, config(SyncMode::kExact, 0));
  EXPECT_EQ(code_of([&] {
              restore_machine(snap, SnapTargets{&b, nullptr, nullptr});
            }),
            SnapError::Code::kConfigMismatch);
}

// ----- Structured refusal -----

class SnapRefusal : public ::testing::Test {
 protected:
  void SetUp() override {
    Machine m;
    m.start();
    m.run_to(microseconds(80.0));
    image_ = save_machine(m.targets()).encode();
  }
  std::vector<std::uint8_t> image_;
};

TEST_F(SnapRefusal, TruncatedFile) {
  std::vector<std::uint8_t> cut(image_.begin(),
                                image_.begin() + image_.size() / 2);
  EXPECT_EQ(code_of([&] { SnapshotFile::decode(cut); }),
            SnapError::Code::kTruncated);
}

TEST_F(SnapRefusal, FlippedCrcByte) {
  std::vector<std::uint8_t> bad = image_;
  bad[bad.size() - 100] ^= 0x01;  // payload byte: CRC must catch it
  EXPECT_EQ(code_of([&] { SnapshotFile::decode(bad); }),
            SnapError::Code::kBadCrc);
}

TEST_F(SnapRefusal, BadMagic) {
  std::vector<std::uint8_t> bad = image_;
  bad[0] ^= 0xFF;
  EXPECT_EQ(code_of([&] { SnapshotFile::decode(bad); }),
            SnapError::Code::kBadMagic);
  EXPECT_EQ(code_of([&] {
              SnapshotFile::decode(std::vector<std::uint8_t>{0x53, 0x57});
            }),
            SnapError::Code::kBadMagic);
}

TEST_F(SnapRefusal, WrongVersion) {
  std::vector<std::uint8_t> bad = image_;
  bad[4] += 1;  // little-endian version field follows the magic
  EXPECT_EQ(code_of([&] { SnapshotFile::decode(bad); }),
            SnapError::Code::kBadVersion);
}

TEST_F(SnapRefusal, ConfigHashMismatch) {
  const SnapshotFile f = SnapshotFile::decode(image_);
  // Same geometry, different fault plan seed: a differently configured
  // machine must refuse before touching any state...
  Machine other(true, true, /*fault_seed=*/99);
  EXPECT_EQ(code_of([&] { restore_machine(f, other.targets()); }),
            SnapError::Code::kConfigMismatch);
  // ...and stay fully runnable from scratch (nothing was half-applied).
  EXPECT_EQ(other.sys.now(), 0);
  other.start();
  other.run_to(microseconds(50.0));
  EXPECT_GT(other.sys.find_core(0)->instructions_retired(), 0u);
}

TEST_F(SnapRefusal, MissingSection) {
  const SnapshotFile f = SnapshotFile::decode(image_);
  SnapshotFile gutted;
  gutted.config_hash = f.config_hash;
  for (SnapSection s : {SnapSection::kMeta, SnapSection::kSystem,
                        SnapSection::kObs, SnapSection::kFault}) {
    gutted.add(s, *f.find(s));  // everything but kEvents
  }
  Machine m;
  EXPECT_EQ(code_of([&] { restore_machine(gutted, m.targets()); }),
            SnapError::Code::kMissingSection);
}

TEST(SnapRefusalStandalone, UndescribedEventRefusesToSave) {
  Machine m(false, false);
  m.start();
  m.run_to(microseconds(20.0));
  // A host-scheduled event with no descriptor (a test harness callback,
  // say) makes the machine unsnapshottable — and save must say so rather
  // than silently drop the event.
  m.sim.after(microseconds(5.0), [] {});
  EXPECT_EQ(code_of([&] { save_machine(m.targets()); }),
            SnapError::Code::kUndescribedEvent);
}

// ----- File layer: crash-safe writes and rotation -----

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("swallow_snap_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(SnapFiles, CrashSafeWriteRoundTripsAndLeavesNoTemp) {
  Machine m;
  m.start();
  m.run_to(microseconds(40.0));
  const SnapshotFile f = save_machine(m.targets());

  TempDir dir;
  const std::string path = checkpoint_path(dir.path.string(), 7);
  f.write_file(path);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  const SnapshotFile back = SnapshotFile::read_file(path);
  EXPECT_EQ(back.config_hash, f.config_hash);
  EXPECT_EQ(back.encode() == f.encode(), true);
}

TEST(SnapFiles, RotationListsNewestFirstAndPrunes) {
  TempDir dir;
  Machine m;
  m.start();
  for (int k = 1; k <= 5; ++k) {
    m.run_to(k * microseconds(20.0));
    save_machine(m.targets())
        .write_file(checkpoint_path(dir.path.string(),
                                    static_cast<std::uint64_t>(k)));
  }
  std::vector<std::string> all = list_checkpoints(dir.path.string());
  ASSERT_EQ(all.size(), 5u);
  EXPECT_NE(all[0].find("ckpt-000000000005"), std::string::npos);
  EXPECT_NE(all[4].find("ckpt-000000000001"), std::string::npos);

  prune_checkpoints(dir.path.string(), 3);
  all = list_checkpoints(dir.path.string());
  ASSERT_EQ(all.size(), 3u);
  EXPECT_NE(all[2].find("ckpt-000000000003"), std::string::npos);
}

// The rotation contract end to end: when the newest checkpoint is corrupt
// the newest-first walk refuses it with a structured error and the
// previous snapshot restores — and its future is the same one the
// uninterrupted machine lives.  Checkpoints sit on the 50 us step grid:
// snapshot bytes are chop-aligned-identical (the obs section's
// ring-vs-merged partition tracks the caller's run_until deadlines), so
// the comparison runs must share the grid, as swallow_run's resume does.
TEST(SnapFiles, AutoResumeFallsBackToPreviousOnCorruption) {
  TempDir dir;
  Machine b;
  b.start();
  b.run_to(microseconds(50.0));
  save_machine(b.targets()).write_file(checkpoint_path(dir.path.string(), 1));
  b.run_to(microseconds(100.0));
  save_machine(b.targets()).write_file(checkpoint_path(dir.path.string(), 2));

  // Flip one payload byte of the newest.
  {
    const std::string newest = list_checkpoints(dir.path.string()).at(0);
    std::FILE* fp = std::fopen(newest.c_str(), "r+b");
    ASSERT_NE(fp, nullptr);
    std::fseek(fp, -50, SEEK_END);
    const int c = std::fgetc(fp);
    std::fseek(fp, -50, SEEK_END);
    std::fputc(c ^ 0x01, fp);
    std::fclose(fp);
  }

  // Newest-first walk: checkpoint 2 refuses with kBadCrc, 1 restores.
  SnapshotFile restored;
  int refused = 0;
  for (const std::string& path : list_checkpoints(dir.path.string())) {
    try {
      restored = SnapshotFile::read_file(path);
      break;
    } catch (const SnapError& e) {
      EXPECT_EQ(e.code(), SnapError::Code::kBadCrc);
      ++refused;
    }
  }
  EXPECT_EQ(refused, 1);

  Machine c;
  restore_machine(restored, c.targets());
  EXPECT_EQ(c.sys.now(), microseconds(50.0));
  c.run_to(microseconds(200.0));

  Machine a;
  a.start();
  a.run_to(microseconds(200.0));
  const SnapshotFile fa = save_machine(a.targets());
  const SnapshotFile fc = save_machine(c.targets());
  EXPECT_EQ(fa.config_hash, fc.config_hash);
  for (SnapSection s :
       {SnapSection::kMeta, SnapSection::kSystem, SnapSection::kEvents,
        SnapSection::kObs, SnapSection::kFault}) {
    const auto* pa = fa.find(s);
    const auto* pc = fc.find(s);
    ASSERT_TRUE(pa && pc);
    if (*pa != *pc) {
      size_t off = 0;
      while (off < pa->size() && off < pc->size() && (*pa)[off] == (*pc)[off])
        ++off;
      ADD_FAILURE() << "fallback restore did not rejoin the uninterrupted "
                       "timeline: section "
                    << static_cast<int>(s) << " differs at byte " << off
                    << " (sizes " << pa->size() << " vs " << pc->size() << ")";
    }
  }
}

// ----- Time bisection -----

TEST(SnapBisect, LocalisesPlantedDivergenceToOneInterval) {
  const SourceSet sources = render_sources(differ_generate(5));
  TimeBisectOptions opts;
  opts.interval = microseconds(50.0);
  opts.horizon = microseconds(800.0);
  opts.plant_at = microseconds(430.0);
  const TimeBisectResult r = time_bisect(sources, opts);
  ASSERT_TRUE(r.diverged);
  EXPECT_EQ(r.hi - r.lo, opts.interval);
  EXPECT_GT(opts.plant_at, r.lo);
  EXPECT_LE(opts.plant_at, r.hi);
  // log2(16 checkpoints) probes, not a linear scan.
  EXPECT_LE(r.probes, 5);
}

TEST(SnapBisect, CleanRunsDoNotDiverge) {
  const SourceSet sources = render_sources(differ_generate(5));
  TimeBisectOptions opts;
  opts.interval = microseconds(50.0);
  opts.horizon = microseconds(400.0);
  opts.plant_at = 0;
  const TimeBisectResult r = time_bisect(sources, opts);
  EXPECT_FALSE(r.diverged);
}

}  // namespace
}  // namespace swallow
