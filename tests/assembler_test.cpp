// Assembler error paths: every rejected input must produce a line-numbered
// diagnostic naming the problem, via both the throwing assemble() and the
// non-throwing try_assemble() entry points.  The happy path is covered by
// arch_test.cpp and the conformance suite; this file pins down what a user
// sees when their source is wrong.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "arch/assembler.h"
#include "common/error.h"

namespace swallow {
namespace {

struct DiagnosticCase {
  const char* name;
  const char* source;
  const char* expected_fragment;  // must appear in the diagnostic
  int expected_line;              // 1-based line the diagnostic points at
};

class Diagnostics : public ::testing::TestWithParam<DiagnosticCase> {};

// try_assemble reports the failure through the out-parameter and never
// unwinds, so batch tools (and the fuzzers) can keep going.
TEST_P(Diagnostics, TryAssembleReturnsNulloptWithMessage) {
  const DiagnosticCase& c = GetParam();
  std::string error;
  std::optional<Image> image;
  ASSERT_NO_THROW(image = try_assemble(c.source, &error)) << c.name;
  ASSERT_FALSE(image.has_value()) << c.name;
  EXPECT_NE(error.find(c.expected_fragment), std::string::npos)
      << c.name << ": diagnostic was '" << error << "'";
  const std::string line_tag = "asm line " + std::to_string(c.expected_line);
  EXPECT_NE(error.find(line_tag), std::string::npos)
      << c.name << ": expected '" << line_tag << "' in '" << error << "'";
}

// assemble() throws the same line-numbered message as swallow::Error.
TEST_P(Diagnostics, AssembleThrowsSameMessage) {
  const DiagnosticCase& c = GetParam();
  try {
    assemble(GetParam().source);
    FAIL() << c.name << ": expected swallow::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(c.expected_fragment),
              std::string::npos)
        << c.name << ": diagnostic was '" << e.what() << "'";
  }
}

const DiagnosticCase kDiagnostics[] = {
    {"unknown_mnemonic", "    frobnicate r0, r1",
     "unknown mnemonic 'frobnicate'", 1},
    {"unknown_mnemonic_line_number",
     "    ldc r0, 1\n    ldc r1, 2\n    blorp r0", "unknown mnemonic", 3},
    {"immediate_too_large", "    ldc r0, 70000", "out of 16-bit range", 1},
    {"immediate_too_negative", "    addi r0, r0, -40000",
     "out of 16-bit range", 1},
    {"duplicate_label", "again:\n    ldc r0, 1\nagain:\n    texit",
     "duplicate label 'again'", 3},
    {"undefined_symbol", "    bu nowhere", "undefined symbol 'nowhere'", 1},
    {"bad_operand_token", "    ldc r0, $$$", "unrecognised operand '$$$'", 1},
    {"too_few_operands", "    add r0, r1", "expects 3 operand(s), got 2", 1},
    {"too_many_operands", "    not r0, r1, r2", "expects 2 operand(s), got 3",
     1},
    {"register_where_immediate", "    ldc r0, r1", "must be an immediate", 1},
    {"immediate_where_register", "    add r0, r1, 5", "must be a register",
     1},
    {"unknown_directive", "    .banana 4", "unknown directive '.banana'", 1},
    {"org_backwards", "    ldc r0, 1\n    ldc r1, 2\n    .org 1",
     ".org cannot move backwards", 3},
    {"org_operand_count", "    .org 1, 2", ".org takes one operand", 1},
    {"space_operand_count", "    .space", ".space takes one operand", 1},
    {"word_register_operand", "    .word r5",
     ".word operand cannot be a register", 1},
};

INSTANTIATE_TEST_SUITE_P(
    Assembler, Diagnostics, ::testing::ValuesIn(kDiagnostics),
    [](const ::testing::TestParamInfo<DiagnosticCase>& info) {
      return std::string(info.param.name);
    });

// On success try_assemble leaves the error string untouched and hands back
// the same image assemble() would.
TEST(TryAssemble, SuccessLeavesErrorAlone) {
  std::string error = "sentinel";
  const auto image = try_assemble("    ldc r0, 42\n    texit\n", &error);
  ASSERT_TRUE(image.has_value());
  EXPECT_EQ(error, "sentinel");
  EXPECT_EQ(image->words.size(), 2u);
}

TEST(TryAssemble, NullErrorPointerIsAccepted) {
  EXPECT_FALSE(try_assemble("    junk", nullptr).has_value());
}

}  // namespace
}  // namespace swallow
