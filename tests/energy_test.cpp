// Unit tests for the energy models: Eq. (1) core power, Fig. 3 idle line,
// Fig. 4 DVFS, Fig. 2 node decomposition, Table I link energies, supply
// rails and the shunt/amp/ADC measurement chain.
#include <gtest/gtest.h>

#include "energy/core_power.h"
#include "energy/instr_energy.h"
#include "energy/ledger.h"
#include "energy/link_energy.h"
#include "energy/measure.h"
#include "energy/node_power.h"
#include "energy/params.h"
#include "energy/supply.h"
#include "sim/simulator.h"

namespace swallow {
namespace {

constexpr double kMw = 1e-3;

TEST(CorePower, EquationOneAtNominalVoltage) {
  CorePowerModel m;
  // Pc = (46 + 0.30 f) mW: the paper quotes 193 mW at 500 MHz (rounded
  // from 196) and 65 mW at 71 MHz (rounded from 67.3).
  EXPECT_NEAR(m.active_power(500, 1.0), (46.0 + 0.30 * 500) * kMw, 1e-12);
  EXPECT_NEAR(m.active_power(71, 1.0), (46.0 + 0.30 * 71) * kMw, 1e-12);
}

TEST(CorePower, IdleLineMatchesFigureThreeEndpoints) {
  CorePowerModel m;
  EXPECT_NEAR(m.baseline_power(500, 1.0), 113.0 * kMw, 0.01 * kMw);
  EXPECT_NEAR(m.baseline_power(71, 1.0), 50.0 * kMw, 0.01 * kMw);
}

TEST(CorePower, ThreadInterpolationIsLinear) {
  CorePowerModel m;
  const Watts idle = m.power(500, 1.0, 0);
  const Watts full = m.power(500, 1.0, 4);
  const Watts half = m.power(500, 1.0, 2);
  EXPECT_DOUBLE_EQ(idle, m.baseline_power(500, 1.0));
  EXPECT_DOUBLE_EQ(full, m.active_power(500, 1.0));
  EXPECT_NEAR(half, 0.5 * (idle + full), 1e-12);
  // Beyond four threads issue rate saturates (Eq. 2), so power saturates.
  EXPECT_DOUBLE_EQ(m.power(500, 1.0, 8), full);
}

TEST(CorePower, InstructionEnergyReconstructsActiveLine) {
  CorePowerModel m;
  for (double f : {71.0, 200.0, 500.0}) {
    const Joules per_instr = m.instruction_energy(f, 1.0);
    const double issue_rate = f * 1e6;  // one instruction per cycle
    EXPECT_NEAR(m.baseline_power(f, 1.0) + per_instr * issue_rate,
                m.active_power(f, 1.0), 1e-12);
  }
}

TEST(CorePower, InstructionEnergyMagnitudeIsSubNanojoule) {
  // Sanity anchor for the paper's unit typo discussion: the issue-dynamic
  // energy per instruction is tenths of nanojoules, not microjoules.
  CorePowerModel m;
  const double nj = to_nanojoules(m.instruction_energy(500, 1.0));
  EXPECT_GT(nj, 0.05);
  EXPECT_LT(nj, 1.0);
}

TEST(CorePower, MinVoltageCurveMatchesPaper) {
  CorePowerModel m;
  EXPECT_DOUBLE_EQ(m.min_voltage(71), 0.60);
  EXPECT_DOUBLE_EQ(m.min_voltage(500), 0.95);
  EXPECT_DOUBLE_EQ(m.min_voltage(20), 0.60);   // clamped below
  EXPECT_DOUBLE_EQ(m.min_voltage(600), 0.95);  // clamped above
  const double mid = m.min_voltage(285.5);
  EXPECT_GT(mid, 0.6);
  EXPECT_LT(mid, 0.95);
}

TEST(CorePower, DvfsSavesPowerEverywhere) {
  CorePowerModel m;
  for (double f = 71; f <= 500; f += 13) {
    const Watts at_1v = m.active_power(f, 1.0);
    const Watts scaled = m.active_power(f, m.min_voltage(f));
    EXPECT_LT(scaled, at_1v) << "f=" << f;
  }
  // Relative saving is larger at low frequency (lower Vmin) — the shape of
  // Fig. 4.
  const double save_lo =
      1.0 - m.active_power(71, m.min_voltage(71)) / m.active_power(71, 1.0);
  const double save_hi =
      1.0 - m.active_power(500, m.min_voltage(500)) / m.active_power(500, 1.0);
  EXPECT_GT(save_lo, save_hi);
}

TEST(InstrEnergy, WeightsOrderedSensibly) {
  EXPECT_LT(instr_weight(InstrClass::kNop), instr_weight(InstrClass::kAlu));
  EXPECT_GT(instr_weight(InstrClass::kMul), instr_weight(InstrClass::kAlu));
  EXPECT_GT(instr_weight(InstrClass::kMemory), instr_weight(InstrClass::kBranch));
  EXPECT_EQ(to_string(InstrClass::kComm), "comm");
}

TEST(InstrEnergy, DetailedWeightDisabledEqualsClassWeight) {
  DetailedEnergyConfig cfg;  // disabled by default
  EXPECT_DOUBLE_EQ(
      detailed_weight(cfg, InstrClass::kMul, InstrClass::kAlu, 0xFFFF, 0),
      instr_weight(InstrClass::kMul));
}

TEST(InstrEnergy, DetailedWeightRespondsToOperandHamming) {
  DetailedEnergyConfig cfg;
  cfg.enabled = true;
  const double zeros = detailed_weight(cfg, InstrClass::kAlu,
                                       InstrClass::kAlu, 0, 0);
  const double ones = detailed_weight(cfg, InstrClass::kAlu, InstrClass::kAlu,
                                      0xFFFFFFFF, 0xFFFFFFFF);
  EXPECT_LT(zeros, ones);
  // Swing equals the configured data weight.
  EXPECT_NEAR(ones - zeros, cfg.data_weight, 1e-12);
  // Half-weight operands sit on the class weight (zero-mean data term,
  // accounting only for the switch term).
  const double half = detailed_weight(cfg, InstrClass::kAlu, InstrClass::kAlu,
                                      0xFFFF0000, 0x0000FFFF);
  EXPECT_NEAR(half, instr_weight(InstrClass::kAlu) -
                        cfg.switch_weight * cfg.change_prob_baseline,
              1e-12);
}

TEST(InstrEnergy, DetailedWeightChargesClassSwitching) {
  DetailedEnergyConfig cfg;
  cfg.enabled = true;
  const double same = detailed_weight(cfg, InstrClass::kAlu, InstrClass::kAlu,
                                      0xFFFF, 0xFFFF0000);
  const double switched = detailed_weight(cfg, InstrClass::kAlu,
                                          InstrClass::kMemory, 0xFFFF,
                                          0xFFFF0000);
  EXPECT_NEAR(switched - same, cfg.switch_weight, 1e-12);
}

TEST(InstrEnergy, Popcount) {
  EXPECT_EQ(popcount32(0), 0);
  EXPECT_EQ(popcount32(0xFFFFFFFF), 32);
  EXPECT_EQ(popcount32(0x80000001), 2);
}

TEST(NodePower, NominalMatchesFigureTwo) {
  NodePowerModel m;
  const NodePowerBreakdown b = m.breakdown(NodeOperatingPoint{});
  EXPECT_NEAR(to_milliwatts(b.compute), 78.0, 1e-9);
  EXPECT_NEAR(to_milliwatts(b.statics), 68.0, 1e-9);
  EXPECT_NEAR(to_milliwatts(b.network_interface), 58.0, 1e-9);
  EXPECT_NEAR(to_milliwatts(b.dcdc_io), 46.0, 1e-9);
  EXPECT_NEAR(to_milliwatts(b.other), 10.0, 1e-9);
  EXPECT_NEAR(to_milliwatts(b.total()), 260.0, 1e-9);
}

TEST(NodePower, ScalesDownWithFrequencyAndLoad) {
  NodePowerModel m;
  NodeOperatingPoint slow{.f_mhz = 100, .v = 1.0, .compute_util = 0.5,
                          .link_util = 0.1};
  const NodePowerBreakdown b = m.breakdown(slow);
  EXPECT_LT(b.total(), milliwatts(260.0));
  EXPECT_GT(b.total(), milliwatts(60.0));  // static floor remains
  EXPECT_THROW(m.breakdown(NodeOperatingPoint{.f_mhz = 500, .v = 1.0,
                                              .compute_util = 1.5,
                                              .link_util = 0}),
               Error);
}

TEST(LinkEnergy, TableOneValuesExact) {
  EXPECT_DOUBLE_EQ(to_picojoules(link_energy_per_bit(LinkClass::kOnChip)), 5.6);
  EXPECT_DOUBLE_EQ(
      to_picojoules(link_energy_per_bit(LinkClass::kBoardVertical)), 212.8);
  EXPECT_DOUBLE_EQ(
      to_picojoules(link_energy_per_bit(LinkClass::kBoardHorizontal)), 201.6);
  EXPECT_DOUBLE_EQ(
      to_picojoules(link_energy_per_bit(LinkClass::kOffBoardCable)), 10880.0);
}

TEST(LinkEnergy, OffBoardIsFiftyTimesOnBoard) {
  // §II: "the energy cost per bit rises by a factor of 50" going off-board.
  const double ratio =
      to_picojoules(link_energy_per_bit(LinkClass::kOffBoardCable)) /
      to_picojoules(link_energy_per_bit(LinkClass::kBoardHorizontal));
  EXPECT_NEAR(ratio, 50.0, 5.0);
}

TEST(LinkEnergy, CableEnergyScalesWithLength) {
  const Joules at_30 = link_energy_per_bit(LinkClass::kOffBoardCable, 30.0);
  const Joules at_60 = link_energy_per_bit(LinkClass::kOffBoardCable, 60.0);
  EXPECT_NEAR(at_60 / at_30, 2.0, 1e-12);
}

TEST(LinkEnergy, RateGrades) {
  EXPECT_DOUBLE_EQ(link_rate(LinkClass::kOnChip, LinkGrade::kSwallowDefault), 250.0);
  EXPECT_DOUBLE_EQ(link_rate(LinkClass::kOnChip, LinkGrade::kArchitecturalMax), 500.0);
  EXPECT_DOUBLE_EQ(link_rate(LinkClass::kBoardVertical, LinkGrade::kSwallowDefault), 62.5);
  EXPECT_DOUBLE_EQ(link_rate(LinkClass::kOffBoardCable, LinkGrade::kArchitecturalMax), 125.0);
}

TEST(Ledger, PowerTraceIntegratesPiecewiseLevels) {
  EnergyLedger ledger;
  PowerTrace t(ledger, EnergyAccount::kCoreBaseline);
  t.set_level(0, 1.0);                       // 1 W from t=0
  t.set_level(microseconds(1.0), 2.0);       // 2 W from 1 us
  t.settle(microseconds(3.0));               // ...to 3 us
  // 1 W * 1 us + 2 W * 2 us = 5 uJ.
  EXPECT_NEAR(ledger.total(EnergyAccount::kCoreBaseline), 5e-6, 1e-15);
  EXPECT_NEAR(ledger.grand_total(), 5e-6, 1e-15);
}

TEST(Ledger, TraceTracksItsOwnTotal) {
  EnergyLedger ledger;
  PowerTrace a(ledger, EnergyAccount::kCoreBaseline);
  PowerTrace b(ledger, EnergyAccount::kCoreBaseline);  // same account
  a.set_level(0, 1.0);
  b.set_level(0, 2.0);
  a.settle(microseconds(1.0));
  b.settle(microseconds(1.0));
  a.add_pulse(1e-6);
  // Per-trace attribution splits what the shared account aggregates.
  EXPECT_NEAR(a.total(), 2e-6, 1e-15);
  EXPECT_NEAR(b.total(), 2e-6, 1e-15);
  EXPECT_NEAR(ledger.total(EnergyAccount::kCoreBaseline), 4e-6, 1e-15);
}

TEST(Ledger, PulsesAndLinkTotals) {
  EnergyLedger ledger;
  PowerTrace t(ledger, EnergyAccount::kLinkOnChip);
  t.add_pulse(picojoules(5.6) * 8);  // one token
  ledger.add(EnergyAccount::kLinkCable, picojoules(10880) * 8);
  EXPECT_NEAR(to_picojoules(ledger.link_total()), (5.6 + 10880) * 8, 1e-6);
  ledger.reset();
  EXPECT_EQ(ledger.grand_total(), 0.0);
}

TEST(Supply, RailSumsAttachedSources) {
  EnergyLedger ledger;
  PowerTrace a(ledger, EnergyAccount::kCoreBaseline);
  PowerTrace b(ledger, EnergyAccount::kCoreInstructions);
  a.set_level(0, milliwatts(113.0));
  b.set_level(0, milliwatts(83.0));
  Rail rail("core-rail-0", 1.0);
  rail.attach(&a);
  rail.attach(&b);
  rail.attach([] { return milliwatts(4.0); });
  EXPECT_NEAR(to_milliwatts(rail.power()), 200.0, 1e-9);
  EXPECT_NEAR(rail.current_amps(), 0.200, 1e-9);
}

TEST(Supply, SmpsLossModel) {
  Smps s;  // 93 % efficient + 25 mW quiescent
  const Watts out = 1.0;
  EXPECT_NEAR(s.input_power(out), 1.0 / 0.93 + 0.025, 1e-12);
  EXPECT_NEAR(s.loss(out), s.input_power(out) - out, 1e-12);
}

TEST(Supply, SliceHasFiveRails) {
  SliceSupplies s;
  EXPECT_EQ(SliceSupplies::kRailCount, 5);
  for (int i = 0; i < SliceSupplies::kCoreRails; ++i) {
    EXPECT_DOUBLE_EQ(s.rail(i).voltage(), 1.0);
  }
  EXPECT_DOUBLE_EQ(s.rail(SliceSupplies::kIoRail).voltage(), 3.3);
  // Empty rails still cost quiescent power.
  EXPECT_NEAR(s.input_power(), 5 * 0.025, 1e-12);
}

class MeasureTest : public ::testing::Test {
 protected:
  Simulator sim;
  EnergyLedger ledger;
  PowerTrace trace{ledger, EnergyAccount::kCoreBaseline};
  Rail rail{"core-rail-0", 1.0};

  void SetUp() override { rail.attach(&trace); }
};

TEST_F(MeasureTest, AdcRecoversConstantPower) {
  trace.set_level(0, milliwatts(500.0));
  AnalogFrontEnd fe;
  fe.noise_lsb_rms = 0.0;  // noiseless for the accuracy check
  Rng rng(1);
  const std::uint32_t code = fe.sample_code(rail, rng);
  const Watts recovered = fe.code_to_watts(code, rail.voltage());
  // 12-bit over 3.3 V full scale with gain 50 and 10 mOhm shunt:
  // 1 LSB = 1.61 mW on a 1 V rail.
  EXPECT_NEAR(to_milliwatts(recovered), 500.0, 2.0);
}

TEST_F(MeasureTest, AdcClampsAtFullScale) {
  trace.set_level(0, 50.0);  // far beyond full scale
  AnalogFrontEnd fe;
  Rng rng(1);
  EXPECT_EQ(fe.sample_code(rail, rng), fe.max_code());
}

TEST_F(MeasureTest, SamplerIntegratesEnergy) {
  trace.set_level(0, milliwatts(200.0));
  PowerSampler sampler(sim, {&rail});
  sampler.start(PowerSampler::Mode::kSimultaneous, 1'000'000.0);
  sim.run_until(milliseconds(1.0));
  // 200 mW for 1 ms = 200 uJ (within ADC quantisation + noise).
  EXPECT_NEAR(sampler.energy(0), 200e-6, 4e-6);
  EXPECT_GT(sampler.samples(0), 990u);
  EXPECT_NEAR(to_milliwatts(sampler.latest(0).watts), 200.0, 5.0);
}

TEST_F(MeasureTest, SamplerRespectsAdcRateLimits) {
  PowerSampler sampler(sim, {&rail});
  EXPECT_THROW(sampler.start(PowerSampler::Mode::kSimultaneous, 1.5e6), Error);
  EXPECT_THROW(sampler.start(PowerSampler::Mode::kSingleChannel, 2.5e6), Error);
  EXPECT_NO_THROW(sampler.start(PowerSampler::Mode::kSingleChannel, 2.0e6));
}

TEST_F(MeasureTest, SamplerTracksLevelChanges) {
  trace.set_level(0, milliwatts(100.0));
  PowerSampler sampler(sim, {&rail});
  sampler.record_trace(true);
  sampler.start(PowerSampler::Mode::kSimultaneous, 1'000'000.0);
  sim.run_until(microseconds(500.0));
  trace.set_level(sim.now(), milliwatts(400.0));
  sim.run_until(milliseconds(1.0));
  sampler.stop();
  // Energy ~ 100 mW * 0.5 ms + 400 mW * 0.5 ms = 250 uJ.
  EXPECT_NEAR(sampler.energy(0), 250e-6, 8e-6);
  EXPECT_FALSE(sampler.trace(0).empty());
  // And the in-system latest sample reflects the new level.
  EXPECT_NEAR(to_milliwatts(sampler.latest(0).watts), 400.0, 8.0);
}

TEST_F(MeasureTest, StopHaltsSampling) {
  PowerSampler sampler(sim, {&rail});
  sampler.start(PowerSampler::Mode::kSimultaneous, 1'000'000.0);
  sim.run_until(microseconds(10.0));
  const auto n = sampler.samples(0);
  sampler.stop();
  sim.run_until(microseconds(100.0));
  EXPECT_EQ(sampler.samples(0), n);
}

}  // namespace
}  // namespace swallow
