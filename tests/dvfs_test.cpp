// Tests for dynamic frequency/voltage scaling: the core's auto-DVFS mode
// (§III.B "newer xCORE devices do support full DVFS") and the run-time
// load-factor governor.
#include <gtest/gtest.h>

#include "api/governor.h"
#include "arch/assembler.h"
#include "arch/core.h"
#include "common/strings.h"
#include "sim/simulator.h"

namespace swallow {
namespace {

const char* kSpin4 = R"(
    getr  r4, 3
    getst r5, r4
    tinitpc r5, spin
    getst r5, r4
    tinitpc r5, spin
    getst r5, r4
    tinitpc r5, spin
    msync r4
spin:
    add   r0, r0, r1
    bu    spin
)";

class DvfsTest : public ::testing::Test {
 protected:
  Simulator sim;

  std::unique_ptr<Core> make_core(EnergyLedger& ledger, bool auto_dvfs,
                                  MegaHertz f = 500.0) {
    Core::Config cfg;
    cfg.frequency_mhz = f;
    cfg.auto_dvfs = auto_dvfs;
    return std::make_unique<Core>(sim, ledger, cfg);
  }
};

TEST_F(DvfsTest, AutoDvfsTracksMinimumVoltage) {
  EnergyLedger ledger;
  auto core = make_core(ledger, true, 500.0);
  EXPECT_DOUBLE_EQ(core->voltage(), 0.95);
  core->set_frequency(71.0);
  EXPECT_DOUBLE_EQ(core->voltage(), 0.60);
  core->set_frequency(285.5);
  EXPECT_GT(core->voltage(), 0.60);
  EXPECT_LT(core->voltage(), 0.95);
}

TEST_F(DvfsTest, FixedVoltageCoreStaysAtOneVolt) {
  EnergyLedger ledger;
  auto core = make_core(ledger, false, 500.0);
  EXPECT_DOUBLE_EQ(core->voltage(), 1.0);
  core->set_frequency(71.0);
  EXPECT_DOUBLE_EQ(core->voltage(), 1.0);
}

TEST_F(DvfsTest, SetfreqInstructionAppliesDvfs) {
  EnergyLedger ledger;
  auto core = make_core(ledger, true, 500.0);
  core->load(assemble(R"(
      ldc r0, 71
      setfreq r0
      texit
  )"));
  core->start();
  sim.run_until(microseconds(10.0));
  EXPECT_TRUE(core->finished());
  EXPECT_DOUBLE_EQ(core->frequency(), 71.0);
  EXPECT_DOUBLE_EQ(core->voltage(), 0.60);
}

TEST_F(DvfsTest, DvfsSavingMatchesFigureFourRatio) {
  // Two loaded cores at 71 MHz: one at 1 V, one with DVFS (0.6 V).
  // Fig. 4: ~47 % saving at the bottom of the range.
  EnergyLedger fixed_ledger, dvfs_ledger;
  auto fixed = make_core(fixed_ledger, false, 71.0);
  auto dvfs = make_core(dvfs_ledger, true, 71.0);
  const Image img = assemble(kSpin4);
  fixed->load(img);
  dvfs->load(img);
  fixed->start();
  dvfs->start();
  sim.run_until(microseconds(200.0));
  fixed->settle_energy(sim.now());
  dvfs->settle_energy(sim.now());
  const double saving =
      1.0 - dvfs_ledger.grand_total() / fixed_ledger.grand_total();
  EXPECT_NEAR(saving, 0.476, 0.03);
}

TEST_F(DvfsTest, HostFrequencyChangeAltersExecutionRate) {
  EnergyLedger ledger;
  auto core = make_core(ledger, false, 500.0);
  core->load(assemble("loop: addi r0, r0, 1\n bu loop"));
  core->start();
  sim.run_until(microseconds(50.0));
  const std::uint64_t at_500 = core->instructions_retired();
  core->set_frequency(100.0);
  sim.run_until(microseconds(100.0));
  const std::uint64_t at_100 = core->instructions_retired() - at_500;
  // 100 MHz retires a fifth of what 500 MHz does per unit time.
  EXPECT_NEAR(static_cast<double>(at_100) / static_cast<double>(at_500), 0.2,
              0.02);
}

// ------------------------------------------------------------- governor

/// Rate-limited task: ~500 instructions of work every 10 us.
const char* kBursty = R"(
    gettime r9
loop:
    ldc r2, 166
w:
    add r6, r6, r7
    subi r2, r2, 1
    bt r2, w
    ldc r1, 1000
    add r9, r9, r1
    timewait r9
    bu loop
)";

TEST_F(DvfsTest, GovernorLowersFrequencyForRateLimitedWork) {
  EnergyLedger ledger;
  auto core = make_core(ledger, false, 500.0);
  core->load(assemble(kBursty));
  core->start();
  DfsGovernor governor(sim, *core, {});
  governor.start();
  sim.run_until(milliseconds(3.0));
  // ~500 instructions per 10 us = 50 MIPS of demand; one thread delivers
  // f/4, so the governor should settle well below 500 MHz but keep the
  // deadline (>= ~200 MHz).
  EXPECT_LT(core->frequency(), 420.0);
  EXPECT_GE(core->frequency(), 142.0);
  EXPECT_GT(governor.adjustments(), 0u);
  EXPECT_FALSE(governor.trace().empty());
}

TEST_F(DvfsTest, GovernorKeepsSaturatedCoreFast) {
  EnergyLedger ledger;
  auto core = make_core(ledger, false, 500.0);
  core->load(assemble(kSpin4));
  core->start();
  DfsGovernor governor(sim, *core, {});
  governor.start();
  sim.run_until(milliseconds(1.0));
  EXPECT_DOUBLE_EQ(core->frequency(), 500.0);
}

TEST_F(DvfsTest, GovernorSavesEnergyOnRateLimitedWork) {
  EnergyLedger governed_ledger, fixed_ledger;
  auto governed = make_core(governed_ledger, true, 500.0);
  auto fixed = make_core(fixed_ledger, false, 500.0);
  const Image img = assemble(kBursty);
  governed->load(img);
  fixed->load(img);
  governed->start();
  fixed->start();
  DfsGovernor governor(sim, *governed, {});
  governor.start();
  sim.run_until(milliseconds(5.0));
  governed->settle_energy(sim.now());
  fixed->settle_energy(sim.now());
  // DFS + DVFS on a 40 %-utilised task should save a lot of energy.
  EXPECT_LT(governed_ledger.grand_total(), 0.75 * fixed_ledger.grand_total());
  // And the work kept up: both cores retired a similar instruction count.
  const double retire_ratio =
      static_cast<double>(governed->instructions_retired()) /
      static_cast<double>(fixed->instructions_retired());
  EXPECT_GT(retire_ratio, 0.95);
}

TEST_F(DvfsTest, GovernorRejectsBadConfig) {
  EnergyLedger ledger;
  auto core = make_core(ledger, false);
  DfsGovernor::Config bad;
  bad.utilisation_lo = 0.9;
  bad.utilisation_hi = 0.5;
  EXPECT_THROW(DfsGovernor(sim, *core, bad), Error);
}

}  // namespace
}  // namespace swallow
