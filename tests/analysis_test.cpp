// Tests for the analysis layer: the §V.D E/C ladder, the Table II
// requirement evaluation, Table III figures of merit, and the reporting
// helpers.
#include <gtest/gtest.h>

#include "analysis/ec.h"
#include "analysis/registry.h"
#include "analysis/report.h"
#include "common/error.h"
#include "analysis/netstat.h"
#include "arch/assembler.h"
#include "arch/core.h"
#include "noc/network.h"
#include "sim/simulator.h"

namespace swallow {
namespace {

TEST(Ec, LadderReproducesPaperRatios) {
  const auto ladder = ec_ladder();
  ASSERT_EQ(ladder.size(), 5u);
  EXPECT_NEAR(ladder[0].ratio(), 1.0, 1e-9);    // core-local
  EXPECT_NEAR(ladder[1].ratio(), 16.0, 1e-9);   // chip-local
  EXPECT_NEAR(ladder[2].ratio(), 64.0, 1e-9);   // external
  EXPECT_NEAR(ladder[3].ratio(), 256.0, 1e-9);  // contended
  EXPECT_NEAR(ladder[4].ratio(), 512.0, 1e-9);  // bisection
}

TEST(Ec, LadderEValuesMatchSectionVD) {
  const auto ladder = ec_ladder();
  // "With four or more active threads, E = 16 Gbit/s."
  EXPECT_NEAR(ladder[0].e_gbps, 16.0, 1e-9);
  // "If all available compute resource attempts to communicate over the
  // bisection, then E = 128 Gbps."
  EXPECT_NEAR(ladder[4].e_gbps, 128.0, 1e-9);
  // "the vertical bisection bandwidth, then C = 250 Mbps."
  EXPECT_NEAR(ladder[4].c_gbps, 0.25, 1e-9);
}

TEST(Ec, LadderScalesWithThreadCount) {
  EcParams one_thread;
  one_thread.active_threads = 1;
  const auto ladder = ec_ladder(one_thread);
  // One thread: E = 125 MIPS x 32 bit = 4 Gbit/s (§V.D).
  EXPECT_NEAR(ladder[0].e_gbps, 4.0, 1e-9);
}

TEST(Ec, MeasuredEcFromCounters) {
  // 1000 instructions (32 bits each) against 4000 payload bytes -> 1.0.
  EXPECT_NEAR(measured_ec(1000, 4000), 1.0, 1e-12);
  EXPECT_NEAR(measured_ec(16000, 4000), 16.0, 1e-12);
  EXPECT_THROW(measured_ec(5, 0), Error);
}

TEST(Registry, OnlyXs1MeetsAllRequirements) {
  int qualifying = 0;
  std::string who;
  for (const auto& p : table2_candidates()) {
    if (meets_requirements(p)) {
      ++qualifying;
      who = p.name;
    }
  }
  EXPECT_EQ(qualifying, 1);
  EXPECT_EQ(who, "XMOS XS1-L");
}

TEST(Registry, TableTwoCellsMatchPaper) {
  const auto rows = table2_candidates();
  ASSERT_EQ(rows.size(), 8u);
  // Spot checks against the printed table.
  EXPECT_EQ(rows[0].name, "ARM Cortex M");
  EXPECT_EQ(deterministic_cell(rows[0]), "W/o cache");
  EXPECT_EQ(cache_cell(rows[0]), "Optional");
  EXPECT_EQ(interconnect_cell(rows[3]), "NoC + external");
  EXPECT_EQ(deterministic_cell(rows[4]), "Yes");
  EXPECT_EQ(interconnect_cell(rows[7]), "Ethernet");
}

TEST(Registry, TableThreeMicrowattsPerMegahertz) {
  const auto systems = table3_systems();
  ASSERT_EQ(systems.size(), 5u);
  // Swallow: 193 mW / 500 MHz = 386 uW/MHz... the paper rounds its own
  // figure to 300 using the dynamic slope of Eq. (1); check the published
  // µW/MHz column values through the dedicated accessor instead.
  EXPECT_EQ(systems[0].name, "Swallow");
  EXPECT_NEAR(uw_per_mhz(systems[1]), 435.0, 1.0);   // SpiNNaker
  EXPECT_NEAR(uw_per_mhz(systems[4]), 38.75, 0.1);   // Epiphany-IV
  // Swallow sits mid-range among the surveyed systems (§VI).
  const double swallow = uw_per_mhz(systems[0]);
  EXPECT_GT(swallow, uw_per_mhz(systems[4]));
  EXPECT_LT(swallow, uw_per_mhz(systems[2]));
}

TEST(Report, ComparisonTracksWorstDeviation) {
  Comparison cmp("test");
  cmp.add("a", 100.0, 103.0);
  cmp.add("b", 50.0, 49.0);
  EXPECT_NEAR(cmp.worst_deviation(), 0.03, 1e-9);
  const std::string out = cmp.render();
  EXPECT_NE(out.find("paper"), std::string::npos);
  EXPECT_NE(out.find("3.0 %"), std::string::npos);
}

TEST(Report, SeriesRendering) {
  const std::string out =
      render_series("Fig X", "f (MHz)", "P (mW)", {100, 200}, {76, 106});
  EXPECT_NE(out.find("Fig X"), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);
  EXPECT_NE(out.find("106.00"), std::string::npos);
}

TEST(Report, Formatting) {
  EXPECT_EQ(fmt_mw(0.193), "193.0 mW");
  EXPECT_EQ(fmt_percent(0.125), "12.5 %");
  EXPECT_EQ(fmt_double(3.14159, 3), "3.142");
}

TEST(Netstat, CollectsTrafficAndUtilisation) {
  // Stream across one on-board link and verify the stats line up with the
  // switch counters and the ledger.
  Simulator sim;
  EnergyLedger ledger;
  Network net(sim, ledger);
  auto east = std::make_shared<TableRouter>();
  east->set_default(kDirEast);
  auto west = std::make_shared<TableRouter>();
  west->set_default(kDirWest);
  Core::Config ca;
  ca.node_id = 0;
  Core a(sim, ledger, ca);
  Core::Config cb;
  cb.node_id = 1;
  Core b(sim, ledger, cb);
  Switch& sa = net.add_switch(0, east);
  Switch& sb = net.add_switch(1, west);
  sa.attach_core(a);
  sb.attach_core(b);
  net.connect(sa, kDirEast, sb, kDirWest, LinkClass::kBoardHorizontal);

  const NetworkStats before = collect_network_stats(net, ledger);
  a.load(assemble(R"(
      getr  r0, 2
      ldc   r1, 1
      ldch  r1, 2
      setd  r0, r1
      ldc   r2, 32
  loop:
      out   r0, r2
      subi  r2, r2, 1
      bt    r2, loop
      outct r0, 1
      texit
  )"));
  b.load(assemble(R"(
      getr  r0, 2
      ldc   r2, 32
  loop:
      in    r1, r0
      subi  r2, r2, 1
      bt    r2, loop
      chkct r0, 1
      texit
  )"));
  a.start();
  b.start();
  sim.run();
  const TimePs window = sim.now();

  const NetworkStats stats =
      stats_delta(collect_network_stats(net, ledger), before);
  const auto& h = stats.of(LinkClass::kBoardHorizontal);
  // 3 header + 128 data + 1 END tokens.
  EXPECT_EQ(h.tokens, 132u);
  EXPECT_EQ(h.links, 2);  // both directions are transmitters
  // The link was the bottleneck, so its one used direction was busy
  // nearly the whole run: utilisation over 2 links ~= 50 %.
  EXPECT_GT(h.utilisation(window), 0.40);
  EXPECT_LT(h.utilisation(window), 0.55);
  EXPECT_NEAR(h.energy, 132 * 8 * picojoules(201.6), 1e-12);
  EXPECT_EQ(stats.packets_sunk, 0u);
  EXPECT_GT(stats.tokens_forwarded, 0u);
  // Rendering mentions the class and the token count.
  const std::string out = render_network_stats(stats, window);
  EXPECT_NE(out.find("on-board horizontal"), std::string::npos);
  EXPECT_NE(out.find("132"), std::string::npos);
}

}  // namespace
}  // namespace swallow
