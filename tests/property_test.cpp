// Parameterised property sweeps: Eq. (2) over the frequency x thread-count
// grid, Eq. (1) over the frequency range, ADC recovery over power levels,
// and ledger-vs-measurement energy reconciliation.
#include <gtest/gtest.h>

#include <tuple>

#include "arch/assembler.h"
#include "arch/core.h"
#include "board/system.h"
#include "bench/bench_util.h"
#include "common/strings.h"
#include "energy/measure.h"
#include "sim/simulator.h"

namespace swallow {
namespace {

// ------------------------------------------------ Eq. (2) sweep

class Eq2Sweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(Eq2Sweep, ThroughputMatchesEquationTwo) {
  const auto [freq, threads] = GetParam();
  Simulator sim;
  EnergyLedger ledger;
  Core::Config cfg;
  cfg.frequency_mhz = freq;
  Core core(sim, ledger, cfg);
  core.load(assemble(bench::spin_program(threads)));
  core.start();
  const TimePs warmup = microseconds(10.0);
  sim.run_until(warmup);
  const std::uint64_t base = core.instructions_retired();
  sim.run_until(warmup + microseconds(100.0));
  const double ipsc =
      static_cast<double>(core.instructions_retired() - base) / 100e-6;
  const double expected = freq * 1e6 * std::min(threads, 4) / 4.0;
  EXPECT_NEAR(ipsc, expected, 0.02 * expected)
      << "f=" << freq << " threads=" << threads;
}

INSTANTIATE_TEST_SUITE_P(
    FrequencyThreadGrid, Eq2Sweep,
    ::testing::Combine(::testing::Values(71.0, 250.0, 500.0),
                       ::testing::Values(1, 2, 4, 6, 8)));

// ------------------------------------------------ Eq. (1) sweep

class Eq1Sweep : public ::testing::TestWithParam<double> {};

TEST_P(Eq1Sweep, LoadedCorePowerOnTheLine) {
  const double freq = GetParam();
  Simulator sim;
  EnergyLedger ledger;
  Core::Config cfg;
  cfg.frequency_mhz = freq;
  Core core(sim, ledger, cfg);
  core.load(assemble(bench::spin_program(4)));
  core.start();
  sim.run_until(microseconds(20.0));
  // Instantaneous trace power at full load equals Eq. (1) exactly.
  EXPECT_NEAR(to_milliwatts(core.current_power()), 46.0 + 0.30 * freq, 0.01)
      << "f=" << freq;
}

INSTANTIATE_TEST_SUITE_P(Frequencies, Eq1Sweep,
                         ::testing::Values(71.0, 120.0, 200.0, 300.0, 400.0,
                                           500.0));

// ------------------------------------------------ ADC recovery sweep

class AdcSweep : public ::testing::TestWithParam<double> {};

TEST_P(AdcSweep, RecoversPowerWithinQuantisation) {
  const double mw = GetParam();
  Simulator sim;
  EnergyLedger ledger;
  PowerTrace trace(ledger, EnergyAccount::kCoreBaseline);
  Rail rail("core-rail-0", 1.0);
  rail.attach(&trace);
  trace.set_level(0, milliwatts(mw));
  AnalogFrontEnd fe;
  fe.noise_lsb_rms = 0.0;
  Rng rng(1);
  const Watts recovered = fe.code_to_watts(fe.sample_code(rail, rng), 1.0);
  // 1 LSB on a 1 V rail with the default front end is ~1.6 mW.
  EXPECT_NEAR(to_milliwatts(recovered), mw, 1.7) << mw << " mW";
}

INSTANTIATE_TEST_SUITE_P(PowerLevels, AdcSweep,
                         ::testing::Values(50.0, 113.0, 196.0, 452.0, 780.0,
                                           1500.0));

// ------------------------------------------------ energy reconciliation

TEST(EnergyReconciliation, AdcIntegralMatchesLedgerTraces) {
  // The measurement subsystem (sampled, quantised, noisy) must agree with
  // the exact ledger integration over the same window — the simulator's
  // version of validating the §II instrumentation.
  Simulator sim;
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  bench::load_all_spinning(sys, 4);
  Slice& slice = sys.slice(0, 0);
  slice.sampler().start(PowerSampler::Mode::kSimultaneous,
                        kAdcSimultaneousSps);
  const TimePs window = milliseconds(1.0);
  sim.run_until(window);
  sys.settle_energy();

  // Core rails: ADC integral vs the sum of the cores' own trace totals.
  Joules adc = 0;
  for (int r = 0; r < SliceSupplies::kCoreRails; ++r) {
    adc += slice.sampler().energy(r);
  }
  Joules traces = 0;
  for (int i = 0; i < sys.core_count(); ++i) {
    traces += sys.core_by_index(i).energy_consumed();
  }
  // The ADC sees rail *levels* (average-mix issue power); the ledger also
  // carries the per-instruction class pulses (the spin loop's add/bu mix
  // averages weight 0.95, slightly below the Eq. (1) mix), so the two
  // agree to within that modelled mix deviation (~2 %) plus noise.
  EXPECT_NEAR(adc, traces, 0.035 * traces);
  // And the ledger's core accounts hold the same energy.
  const Joules ledger_cores =
      sys.ledger().total(EnergyAccount::kCoreBaseline) +
      sys.ledger().total(EnergyAccount::kCoreInstructions);
  EXPECT_NEAR(ledger_cores, traces, 1e-12);
}

TEST(EnergyReconciliation, PerCoreAttributionSumsToLedger) {
  Simulator sim;
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  // Load half the cores; attribution must reflect the asymmetry.
  const Image img = assemble(bench::spin_program(4));
  for (int i = 0; i < 8; ++i) {
    sys.core_by_index(i).load(img);
    sys.core_by_index(i).start();
  }
  sim.run_until(microseconds(100.0));
  sys.settle_energy();
  Joules loaded = 0, idle = 0;
  for (int i = 0; i < 16; ++i) {
    (i < 8 ? loaded : idle) += sys.core_by_index(i).energy_consumed();
  }
  // Loaded cores: baseline 113 mW plus the 83 mW issue gap scaled by the
  // spin mix's average instruction weight (add 1.0, bu 0.9 -> 0.95).
  const double expected = (113.0 + 83.0 * 0.95) / 113.0;
  EXPECT_NEAR(loaded / idle, expected, 0.02);
}

}  // namespace
}  // namespace swallow
