// System-level soak and property tests: determinism (bit-for-bit repeat),
// conservation under random traffic, XS1 bit-compare routing end-to-end,
// run-time routing-table reprogramming, and the largest manufactured
// configuration (40 slices / 640 cores).
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "api/taskgen.h"
#include "arch/assembler.h"
#include "board/system.h"
#include "common/rng.h"
#include "common/strings.h"
#include "noc/network.h"
#include "sim/simulator.h"
#include "test_seed.h"

namespace swallow {
namespace {

/// Random all-to-some traffic on a 2x1-slice system; returns the
/// completion time and checks full delivery.
TimePs random_traffic_run(std::uint64_t seed, Joules* energy = nullptr) {
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = 2;
  SwallowSystem sys(sim, cfg);
  AppBuilder app(sys);
  Rng rng(seed);

  // 16 sender/receiver pairs over the 32 cores, random sizes.
  const int pairs = 16;
  std::vector<int> order(32);
  for (int i = 0; i < 32; ++i) order[static_cast<std::size_t>(i)] = i;
  // Deterministic shuffle.
  for (int i = 31; i > 0; --i) {
    const int j = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(i + 1)));
    std::swap(order[static_cast<std::size_t>(i)], order[static_cast<std::size_t>(j)]);
  }
  auto place = [&](int core_index) {
    const int chip = core_index / 2;
    return std::make_tuple(chip % 8, chip / 8,
                           core_index % 2 == 0 ? Layer::kVertical
                                               : Layer::kHorizontal);
  };
  for (int p = 0; p < pairs; ++p) {
    const auto [sx, sy, sl] = place(order[static_cast<std::size_t>(2 * p)]);
    const auto [dx, dy, dl] = place(order[static_cast<std::size_t>(2 * p + 1)]);
    const std::uint64_t bytes = 64 + rng.next_below(960);
    TaskSpec tx, rx;
    const int a = app.add_task(tx, sx, sy, sl);
    const int b = app.add_task(rx, dx, dy, dl);
    const int ch = app.connect(a, b);
    app.set_steps(a, {TaskStep::send(ch, bytes)});
    app.set_steps(b, {TaskStep::recv(ch, bytes)});
  }
  app.start();
  EXPECT_TRUE(app.run_to_completion(milliseconds(500.0))) << "seed " << seed;
  EXPECT_EQ(sys.network().total_packets_sunk(), 0u);
  if (energy != nullptr) {
    sys.settle_energy();
    *energy = sys.ledger().grand_total();
  }
  return app.completion_time();
}

TEST(Soak, RandomTrafficDeliversForManySeeds) {
  const std::uint64_t base = test::test_seed(1);
  SWALLOW_SEED_TRACE(base);
  for (std::uint64_t seed = base; seed < base + 5; ++seed) {
    random_traffic_run(seed);
  }
}

TEST(Soak, SimulationIsBitForBitDeterministic) {
  // The platform's headline property: identical runs produce identical
  // timing and identical energy.
  Joules e1 = 0, e2 = 0;
  const TimePs t1 = random_traffic_run(42, &e1);
  const TimePs t2 = random_traffic_run(42, &e2);
  EXPECT_EQ(t1, t2);
  EXPECT_DOUBLE_EQ(e1, e2);
}

TEST(Soak, DifferentSeedsGiveDifferentSchedules) {
  const TimePs t1 = random_traffic_run(7);
  const TimePs t2 = random_traffic_run(8);
  EXPECT_NE(t1, t2);  // traffic patterns differ
}

// ---------------------------------------------------------------- routing

TEST(Soak, BitCompareRouterDrivesAHypercube) {
  // 4-node hypercube (2 dimensions) using the XS1 hardware routing
  // mechanism: direction by highest differing node-id bit.
  Simulator sim;
  EnergyLedger ledger;
  Network net(sim, ledger);

  std::vector<std::unique_ptr<Core>> cores;
  std::vector<Switch*> switches;
  for (NodeId id = 0; id < 4; ++id) {
    auto router = std::make_shared<BitCompareRouter>();
    router->set_bit_direction(0, kDirEast);   // dimension 0
    router->set_bit_direction(1, kDirNorth);  // dimension 1
    Core::Config cfg;
    cfg.node_id = id;
    cores.push_back(std::make_unique<Core>(sim, ledger, cfg));
    switches.push_back(&net.add_switch(id, router));
    switches.back()->attach_core(*cores.back());
  }
  // Dimension-0 links (ids differing in bit 0) and dimension-1 links.
  net.connect(*switches[0], kDirEast, *switches[1], kDirEast, LinkClass::kOnChip);
  net.connect(*switches[2], kDirEast, *switches[3], kDirEast, LinkClass::kOnChip);
  net.connect(*switches[0], kDirNorth, *switches[2], kDirNorth, LinkClass::kOnChip);
  net.connect(*switches[1], kDirNorth, *switches[3], kDirNorth, LinkClass::kOnChip);

  // Node 0 sends to node 3 (two dimension hops).
  cores[0]->load(assemble(R"(
      getr  r0, 2
      ldc   r1, 3
      ldch  r1, 2
      setd  r0, r1
      ldc   r2, 99
      out   r0, r2
      outct r0, 1
      texit
  )"));
  const std::string rx = R"(
      getr  r0, 2
      in    r1, r0
      chkct r0, 1
      ldc   r2, out
      stw   r1, r2, 0
      texit
  out: .word 0
  )";
  cores[3]->load(assemble(rx));
  cores[0]->start();
  cores[3]->start();
  sim.run_until(milliseconds(1.0));
  ASSERT_TRUE(cores[3]->finished());
  EXPECT_EQ(cores[3]->peek_word(assemble(rx).symbol("out") * 4), 99u);
  // The route went through an intermediate switch (two hops).
  EXPECT_GT(switches[1]->tokens_forwarded() + switches[2]->tokens_forwarded(),
            0u);
}

TEST(Soak, RoutingTablesCanBeReprogrammedAtRunTime) {
  // §V.A: "New routing algorithms can simply be programmed in software."
  // Break the direct route and watch the next packet follow the detour.
  Simulator sim;
  EnergyLedger ledger;
  Network net(sim, ledger);

  // Triangle: 0 - 1 - 2 with a direct 0-2 link as well.
  std::vector<std::unique_ptr<Core>> cores;
  std::vector<Switch*> switches;
  std::vector<std::shared_ptr<TableRouter>> routers;
  for (NodeId id = 0; id < 3; ++id) {
    routers.push_back(std::make_shared<TableRouter>());
    Core::Config cfg;
    cfg.node_id = id;
    cores.push_back(std::make_unique<Core>(sim, ledger, cfg));
    switches.push_back(&net.add_switch(id, routers.back()));
    switches.back()->attach_core(*cores.back());
  }
  net.connect(*switches[0], kDirEast, *switches[1], kDirWest, LinkClass::kOnChip);
  net.connect(*switches[1], kDirEast, *switches[2], kDirWest, LinkClass::kOnChip);
  net.connect(*switches[0], kDirSouth, *switches[2], kDirNorth, LinkClass::kOnChip);
  routers[0]->set_route(2, kDirSouth);  // direct link initially
  routers[1]->set_route(2, kDirEast);
  routers[1]->set_route(0, kDirWest);

  // Sender: two packets 20 us apart.
  cores[0]->load(assemble(R"(
      getr  r0, 2
      ldc   r1, 2
      ldch  r1, 2
      setd  r0, r1
      ldc   r2, 1
      out   r0, r2
      outct r0, 1
      gettime r3
      ldc   r4, 2000
      add   r3, r3, r4
      timewait r3
      ldc   r2, 2
      out   r0, r2
      outct r0, 1
      texit
  )"));
  cores[2]->load(assemble(R"(
      getr  r0, 2
      in    r1, r0
      chkct r0, 1
      in    r2, r0
      chkct r0, 1
      texit
  )"));
  cores[0]->start();
  cores[2]->start();

  // After the first packet, reroute 0->2 via node 1.
  sim.run_until(microseconds(10.0));
  const std::uint64_t direct_before = switches[1]->tokens_forwarded();
  EXPECT_EQ(direct_before, 0u);  // first packet took the direct link
  routers[0]->set_route(2, kDirEast);
  sim.run_until(milliseconds(1.0));
  ASSERT_TRUE(cores[2]->finished());
  // Second packet detoured through switch 1 (8 tokens forwarded).
  EXPECT_EQ(switches[1]->tokens_forwarded(), 8u);
}

TEST(Soak, DiagnoseReportsDeadlockedProgram) {
  // A receiver waiting on the wrong chanend never completes; diagnose()
  // must name the blocked thread and the route still open at a switch.
  Simulator sim;
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  Core& tx = sys.core(0, 0, Layer::kVertical);
  Core& rx = sys.core(1, 0, Layer::kVertical);
  // Sender streams forever (never emits END) to rx chanend 0...
  tx.load(assemble(strprintf(R"(
      getr  r0, 2
      ldc   r1, 0x%x
      ldch  r1, 2
      setd  r0, r1
  loop:
      out   r0, r2
      bu    loop
  )", static_cast<unsigned>(rx.node_id()))));
  // ...but rx allocates two chanends and waits on chanend 1 forever.
  rx.load(assemble(R"(
      getr  r0, 2
      getr  r1, 2
      in    r2, r1
      texit
  )"));
  tx.start();
  rx.start();
  sim.run_until(milliseconds(1.0));
  EXPECT_FALSE(rx.finished());
  const std::string report = sys.diagnose();
  EXPECT_NE(report.find("blocked"), std::string::npos);
  // The sender's held route shows up at some switch with queued tokens.
  EXPECT_NE(report.find("held"), std::string::npos);
}

TEST(Soak, DiagnoseIsQuietForHealthyCompletion) {
  Simulator sim;
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  Core& core = sys.core(0, 0, Layer::kVertical);
  core.load(assemble("ldc r0, 1\n texit"));
  core.start();
  sim.run_until(microseconds(10.0));
  EXPECT_EQ(sys.diagnose(), "");
}

TEST(Soak, FullManufacturedFleetBuilds) {
  // Forty slices were manufactured (§IV.B): 8x5 grid = 640 cores.
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = 8;
  cfg.slices_y = 5;
  SwallowSystem sys(sim, cfg);
  EXPECT_EQ(sys.core_count(), 640);
  // Corner-to-corner delivery across the whole fleet.
  Core& tx = sys.core(0, 0, Layer::kVertical);
  Core& rx = sys.core(31, 9, Layer::kHorizontal);
  tx.load(assemble(strprintf(R"(
      getr  r0, 2
      ldc   r1, 0x%x
      ldch  r1, 2
      setd  r0, r1
      ldc   r2, 640
      out   r0, r2
      outct r0, 1
      texit
  )", static_cast<unsigned>(rx.node_id()))));
  rx.load(assemble(R"(
      getr  r0, 2
      in    r1, r0
      chkct r0, 1
      printi r1
      texit
  )"));
  tx.start();
  rx.start();
  sim.run_until(milliseconds(20.0));
  ASSERT_TRUE(rx.finished());
  EXPECT_EQ(rx.console(), "640");
}

TEST(Soak, TableRoutedSystemMatchesComputedRoutingTiming) {
  // The same traffic over software tables and over the computed router
  // must give identical timing (identical decisions).
  auto run = [&](bool tables) {
    Simulator sim;
    SystemConfig cfg;
    cfg.use_table_routers = tables;
    SwallowSystem sys(sim, cfg);
    AppBuilder app(sys);
    TaskSpec tx, rx;
    const int a = app.add_task(tx, 0, 0, Layer::kVertical);
    const int b = app.add_task(rx, 3, 1, Layer::kHorizontal);
    const int ch = app.connect(a, b);
    app.set_steps(a, {TaskStep::send(ch, 512)});
    app.set_steps(b, {TaskStep::recv(ch, 512)});
    app.start();
    EXPECT_TRUE(app.run_to_completion(milliseconds(100.0)));
    return app.completion_time();
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace swallow
