// Unit tests for the common utility layer: units, strings, tables, math,
// deterministic RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/units.h"

namespace swallow {
namespace {

TEST(Units, TimeConversionsRoundTrip) {
  EXPECT_EQ(nanoseconds(1.0), 1000);
  EXPECT_EQ(microseconds(1.0), 1'000'000);
  EXPECT_EQ(milliseconds(2.5), 2'500'000'000);
  EXPECT_DOUBLE_EQ(to_nanoseconds(nanoseconds(270.0)), 270.0);
  EXPECT_DOUBLE_EQ(to_seconds(kPicosPerSecond), 1.0);
}

TEST(Units, PeriodOfPaperFrequencies) {
  EXPECT_EQ(period_ps(500.0), 2000);  // 500 MHz -> 2 ns
  EXPECT_EQ(period_ps(100.0), 10000); // reference clock -> 10 ns
  EXPECT_EQ(period_ps(71.0), 14085);  // lowest Fig. 3 point
}

TEST(Units, PowerEnergyHelpers) {
  EXPECT_DOUBLE_EQ(to_milliwatts(milliwatts(193.0)), 193.0);
  EXPECT_DOUBLE_EQ(to_picojoules(picojoules(5.6)), 5.6);
  // 1 W for 1 us = 1 uJ.
  EXPECT_NEAR(energy_over(1.0, microseconds(1.0)), 1e-6, 1e-18);
}

TEST(Units, TransferTimeMatchesLinkRates) {
  // One 8-bit token at 250 Mbit/s = 32 ns.
  EXPECT_EQ(transfer_time_ps(8, 250.0), nanoseconds(32.0));
  // 32-bit word at 62.5 Mbit/s = 512 ns.
  EXPECT_EQ(transfer_time_ps(32, 62.5), nanoseconds(512.0));
}

TEST(Error, RequireThrowsOnFailure) {
  EXPECT_NO_THROW(require(true, "ok"));
  EXPECT_THROW(require(false, "boom"), Error);
  EXPECT_THROW(invariant(false, "bug"), InternalError);
}

TEST(Strings, TrimAndSplit) {
  EXPECT_EQ(trim("  hello \t"), "hello");
  EXPECT_EQ(trim(""), "");
  auto parts = split("add r0, r1, r2");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "add");
  EXPECT_EQ(parts[3], "r2");
}

TEST(Strings, SplitFirst) {
  auto parts = split_first("label: add r0", ':');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "label");
  EXPECT_EQ(trim(parts[1]), "add r0");
  EXPECT_EQ(split_first("nolabel", ':').size(), 1u);
}

TEST(Strings, ParseIntFormats) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_EQ(parse_int("#123"), 123);
  EXPECT_EQ(parse_int("0x1f"), 31);
  EXPECT_EQ(parse_int("0b101"), 5);
  EXPECT_EQ(parse_int("1_000"), 1000);
  EXPECT_THROW(parse_int("zz"), Error);
  EXPECT_THROW(parse_int(""), Error);
  EXPECT_THROW(parse_int("9f"), Error);  // hex digit in decimal literal
}

TEST(Strings, Strprintf) {
  EXPECT_EQ(strprintf("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(strprintf("%.1f mW", 193.0), "193.0 mW");
}

TEST(Table, RendersAlignedColumns) {
  TextTable t("Demo");
  t.header({"Link type", "Energy"});
  t.row({"On-chip", "5.6 pJ/bit"});
  t.row({"Off-board", "10880 pJ/bit"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("On-chip"), std::string::npos);
  EXPECT_NE(out.find("10880"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  TextTable t;
  t.header({"a", "b", "c"});
  t.row({"1"});
  EXPECT_NO_THROW(t.render());
}

TEST(Math, LerpClamped) {
  // The paper's voltage curve: 0.6 V @ 71 MHz to 0.95 V @ 500 MHz.
  EXPECT_DOUBLE_EQ(lerp_clamped(71, 71, 0.6, 500, 0.95), 0.6);
  EXPECT_DOUBLE_EQ(lerp_clamped(500, 71, 0.6, 500, 0.95), 0.95);
  EXPECT_DOUBLE_EQ(lerp_clamped(50, 71, 0.6, 500, 0.95), 0.6);   // clamped
  EXPECT_DOUBLE_EQ(lerp_clamped(600, 71, 0.6, 500, 0.95), 0.95); // clamped
  const double mid = lerp_clamped(285.5, 71, 0.6, 500, 0.95);
  EXPECT_GT(mid, 0.6);
  EXPECT_LT(mid, 0.95);
}

TEST(Math, FitLineRecoversEquationOne) {
  // Sample Pc = 46 + 0.30 f at Fig. 3's frequency range and re-fit.
  std::vector<double> f, p;
  for (double x = 71; x <= 500; x += 13) {
    f.push_back(x);
    p.push_back(46.0 + 0.30 * x);
  }
  const LineFit fit = fit_line(f, p);
  EXPECT_NEAR(fit.intercept, 46.0, 1e-9);
  EXPECT_NEAR(fit.slope, 0.30, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Math, FitLineRejectsDegenerateInput) {
  std::vector<double> one{1.0};
  EXPECT_THROW(fit_line(one, one), Error);
  std::vector<double> same{2.0, 2.0}, ys{1.0, 3.0};
  EXPECT_THROW(fit_line(same, ys), Error);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformBoundsRespected) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng r(99);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = r.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Json, ParsesScalarsAndContainers) {
  const Json doc = Json::parse(
      " {\"a\": 1.5, \"b\": [true, false, null], \"c\": \"x\\ny\", "
      "\"nested\": {\"n\": -3}} ");
  EXPECT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.at("a").as_number(), 1.5);
  ASSERT_TRUE(doc.at("b").is_array());
  ASSERT_EQ(doc.at("b").size(), 3u);
  EXPECT_TRUE(doc.at("b").as_array()[0].as_bool());
  EXPECT_TRUE(doc.at("b").as_array()[2].is_null());
  EXPECT_EQ(doc.at("c").as_string(), "x\ny");
  EXPECT_DOUBLE_EQ(doc.at("nested").at("n").as_number(), -3.0);
  EXPECT_FALSE(doc.has("missing"));
  EXPECT_EQ(doc.get("missing"), nullptr);
}

TEST(Json, ParsesUnicodeEscapes) {
  const Json doc = Json::parse("\"\\u0041\\u00e9\"");  // "Aé"
  EXPECT_EQ(doc.as_string(), "A\xc3\xa9");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{\"a\": }"), Error);
  EXPECT_THROW(Json::parse("[1, 2"), Error);
  EXPECT_THROW(Json::parse("{} trailing"), Error);
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), Error);
}

TEST(Json, TypeMismatchThrows) {
  const Json doc = Json::parse("{\"n\": 4}");
  EXPECT_THROW(doc.at("n").as_string(), Error);
  EXPECT_THROW(doc.at("absent"), Error);
  EXPECT_THROW(doc.as_array(), Error);
}

TEST(Json, RoundTripsSimulatorOutputShapes) {
  // The exact shapes swallow_stat consumes: scientific-notation numbers,
  // nested objects in insertion order.
  const Json doc = Json::parse(
      "{\"tracing\": {\"off_wall_s\": 1.2e-3, \"overhead\": -0.069}}");
  EXPECT_NEAR(doc.at("tracing").at("off_wall_s").as_number(), 1.2e-3, 1e-9);
  EXPECT_NEAR(doc.at("tracing").at("overhead").as_number(), -0.069, 1e-9);
}

}  // namespace
}  // namespace swallow
