// Energy attribution layer (src/obs/energy_attr, ISSUE 8): every joule the
// ledger records must be attributed to a (core, thread, function) / link /
// account stack — bit-exactly, deterministically across engines and worker
// counts, and across snapshot/restore — and the windowed power timelines
// embedded in the trace must agree with the independently simulated
// shunt/amplifier/ADC measurement chain (src/energy/measure) within its
// documented quantisation + noise bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "arch/assembler.h"
#include "board/system.h"
#include "common/json.h"
#include "common/stateio.h"
#include "common/units.h"
#include "energy/measure.h"
#include "fault/fault.h"
#include "obs/energy_attr.h"
#include "obs/schema.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "snap/machine.h"
#include "snap/snapfile.h"

namespace swallow {
namespace {

// A looping ping/pong pair with labelled loops, so instruction energy
// lands under a symbolized stack ("core_...;t0;pingloop"), not raw PCs.
constexpr const char* kPingSrc = R"(
    getr  r0, 2
    ldc   r1, 1
    ldch  r1, 2
    setd  r0, r1
    ldc   r4, 400
pingloop:
    out   r0, r4
    outct r0, 1
    in    r3, r0
    chkct r0, 1
    ldc   r5, 1
    sub   r4, r4, r5
    bt    r4, pingloop
    texit
)";

constexpr const char* kPongSrc = R"(
    getr  r0, 2
    ldc   r1, 0
    ldch  r1, 2
    setd  r0, r1
    ldc   r4, 400
pongloop:
    in    r2, r0
    chkct r0, 1
    out   r0, r2
    outct r0, 1
    ldc   r5, 1
    sub   r4, r4, r5
    bt    r4, pongloop
    texit
)";

// One machine with a full energy-attribution session attached.  The
// session is declared before the system: models hold Track* and AttrShard*
// into it, so it must outlive them.
struct EnergyMachine {
  TraceSession session;
  Simulator sim;
  SwallowSystem sys;
  std::unique_ptr<FaultInjector> injector;

  explicit EnergyMachine(int jobs = 0, int slices = 1, bool faults = false,
                         TimePs power_window = microseconds(100.0))
      : session(TraceConfig{.tracing = true,
                            .energy = true,
                            .power_window = power_window}),
        sys(sim, [&] {
          SystemConfig cfg;
          cfg.slices_x = slices;
          cfg.slices_y = slices;
          cfg.reliable_links = true;
          cfg.jobs = jobs;
          return cfg;
        }()) {
    sys.attach_observability(session);
    if (faults) {
      FaultPlan plan;
      plan.seed = 11;
      plan.corrupt_link(0, -1, 0.02);
      injector = std::make_unique<FaultInjector>(sys, plan);
    }
  }

  SnapTargets targets() {
    return SnapTargets{&sys, &session, injector.get()};
  }

  void start() {
    if (injector) injector->arm();
    const Image ping = assemble(kPingSrc);
    const Image pong = assemble(kPongSrc);
    sys.find_core(0)->load(ping);
    sys.find_core(1)->load(pong);
    sys.find_core(0)->start(ping.entry);
    sys.find_core(1)->start(pong.entry);
    sys.start_sampling();
  }

  void run_to(TimePs target) {
    TimePs t = sys.now();
    while (t < target) {
      t = std::min<TimePs>(t + microseconds(50.0), target);
      sys.run_until(t);
    }
  }
};

// ------------------------------------------------------------ conservation

// The keystone: after any run, the attributed per-account totals equal the
// merged ledger's totals in double *bits* — the shards mirror the exact
// charge stream, so equality is exact, not approximate.
TEST(ObsEnergyConservation, BitExactAgainstLedger) {
  EnergyMachine m;
  m.start();
  m.run_to(microseconds(600.0));
  m.sys.finish_observability();
  m.sys.settle_energy();

  EnergyAttribution& attr = m.session.energy_attribution();
  EXPECT_EQ(attr.conservation_error(m.sys.ledger()), "");
  EXPECT_GT(attr.attributed_grand_total(), 0.0);

  // Both sides really are the same bits, account by account.
  EnergyLedger& led = m.sys.ledger();
  for (std::size_t a = 0; a < static_cast<std::size_t>(EnergyAccount::kCount);
       ++a) {
    const auto account = static_cast<EnergyAccount>(a);
    const double want = led.total(account);
    const double got = attr.attributed_total(account);
    EXPECT_EQ(std::memcmp(&want, &got, sizeof want), 0)
        << to_string(account) << ": " << want << " vs " << got;
  }
}

// Instruction energy is symbolized against the assembler's label table,
// idle-line energy lands in [baseline], per-token switch energy in ;ni —
// and the dump passes its own schema check.
TEST(ObsEnergyConservation, StacksAreSymbolizedAndWellFormed) {
  EnergyMachine m;
  m.start();
  m.run_to(microseconds(600.0));
  m.sys.finish_observability();
  m.sys.settle_energy();

  const std::string folded = m.session.energy_attribution().folded();
  EXPECT_NE(folded.find(";t0;pingloop"), std::string::npos) << folded;
  EXPECT_NE(folded.find(";t0;pongloop"), std::string::npos);
  EXPECT_NE(folded.find("[baseline]"), std::string::npos);
  EXPECT_NE(folded.find(";ni"), std::string::npos);

  const std::string json = m.session.energy_attribution().to_json();
  EXPECT_EQ(check_energy_attribution(Json::parse(json)), "") << json;
}

// Go-back-N retransmissions (NAK + resent wire tokens) are charged to a
// distinct link.retry bucket, so protocol overhead is visible separately
// from first-transmission wire energy — and conservation still holds.
TEST(ObsEnergyConservation, RetransmissionsLandInRetryBucket) {
  EnergyMachine m(/*jobs=*/0, /*slices=*/1, /*faults=*/true);
  m.start();
  m.run_to(microseconds(800.0));
  m.sys.finish_observability();
  m.sys.settle_energy();

  const std::string folded = m.session.energy_attribution().folded();
  EXPECT_NE(folded.find(";link;"), std::string::npos) << folded;
  EXPECT_NE(folded.find(";link.retry;"), std::string::npos)
      << "corrupt links with reliable framing must retransmit:\n" << folded;
  EXPECT_EQ(
      m.session.energy_attribution().conservation_error(m.sys.ledger()), "");
}

// ------------------------------------------------------------ determinism

// The attribution dump (JSON and folded) is byte-identical for every
// engine / worker-count choice — same contract as the trace itself.
TEST(ObsEnergyDeterminism, ByteIdenticalAcrossJobs) {
  std::string base_json, base_folded;
  for (int jobs : {0, 1, 2, 4}) {
    EnergyMachine m(jobs, /*slices=*/2);
    m.start();
    m.run_to(microseconds(400.0));
    m.sys.finish_observability();
    m.sys.settle_energy();
    const std::string json = m.session.energy_attribution().to_json();
    const std::string folded = m.session.energy_attribution().folded();
    EXPECT_EQ(m.session.energy_attribution().conservation_error(
                  m.sys.ledger()),
              "")
        << "jobs=" << jobs;
    if (jobs == 0) {
      base_json = json;
      base_folded = folded;
      EXPECT_GT(json.size(), 100u);
    } else {
      EXPECT_EQ(json, base_json) << "jobs=" << jobs;
      EXPECT_EQ(folded, base_folded) << "jobs=" << jobs;
    }
  }
}

// Run-to-T / snapshot / restore / run-to-2T produces the identical
// attribution dump (and trace) as an uninterrupted run to 2T: the shards'
// shadow totals, buckets and pending retire counts all survive the trip.
TEST(ObsEnergySnapshot, AttributionSurvivesRoundtrip) {
  const TimePs half = microseconds(250.0);

  EnergyMachine a;
  a.start();
  a.run_to(2 * half);
  a.sys.finish_observability();
  a.sys.settle_energy();

  EnergyMachine b;
  b.start();
  b.run_to(half);
  const SnapshotFile mid =
      SnapshotFile::decode(save_machine(b.targets()).encode());

  EnergyMachine c;  // restore-ready: no start(), no sampling
  restore_machine(mid, c.targets());
  c.run_to(2 * half);
  c.sys.finish_observability();
  c.sys.settle_energy();

  EXPECT_EQ(c.session.energy_attribution().to_json(),
            a.session.energy_attribution().to_json());
  EXPECT_EQ(c.session.energy_attribution().folded(),
            a.session.energy_attribution().folded());
  EXPECT_EQ(c.session.chrome_json(), a.session.chrome_json());
  EXPECT_EQ(
      c.session.energy_attribution().conservation_error(c.sys.ledger()), "");
}

// A mismatched shard count on load is a structured malformed-snapshot
// error, not a crash or silent misread.
TEST(ObsEnergySnapshot, ShardCountMismatchRefused) {
  EnergyAttribution one;
  EnergyLedger l1;
  one.make_shard("slice0", l1);
  StateWriter w;
  one.save_state(w);

  EnergyAttribution two;
  EnergyLedger l2, l3;
  two.make_shard("slice0", l2);
  two.make_shard("system", l3);
  StateReader r(w.data());
  try {
    two.load_state(r);
    FAIL() << "expected SnapError";
  } catch (const SnapError& e) {
    EXPECT_EQ(e.code(), SnapError::Code::kMalformed);
  }
}

// --------------------------------------------------- power timeline vs ADC

// Counter samples of one Chrome-trace counter series, in time order.
std::vector<std::pair<double, double>> counter_series(const Json& doc,
                                                      long long pid,
                                                      const std::string& name) {
  std::vector<std::pair<double, double>> out;
  for (const Json& e : doc.at("traceEvents").as_array()) {
    const Json* ph = e.get("ph");
    if (!ph || !ph->is_string() || ph->as_string() != "C") continue;
    if (e.at("name").as_string() != name) continue;
    if (static_cast<long long>(e.at("pid").as_number()) != pid) continue;
    out.emplace_back(e.at("ts").as_number(), e.at("args").at("value").as_number());
  }
  return out;
}

// The windowed power timeline and the simulated shunt/ADC chain measure
// the same rail two independent ways: the timeline integrates the power
// traces the ledger integrates; the ADC quantises the rail's
// instantaneous draw (12-bit, vref 3.3 V, gain 50, 10 mOhm shunt, 0.5 LSB
// rms input noise).  On a pure-ALU spin workload the instruction-class
// pulse energy is zero (kAlu weight is exactly 1.0), so away from the
// DVFS step every ADC sample must match its covering window within
//     4 * LSB + 2 %
// (LSB ~ 1.6 mW on a 1 V core rail: vref/2^bits / gain / shunt * V;
// 4 LSB covers quantisation plus an 8-sigma noise margin).  Windows that
// straddle the frequency step average two power levels and are excluded.
TEST(ObsEnergyPowerTimeline, MatchesAdcChainAcrossDvfsStep) {
  // Core 0 spins at 500 MHz, then drops itself to 100 MHz mid-run: a
  // visible power step through both measurement paths.
  constexpr const char* kStepSrc = R"(
      ldc   r1, 1
      ldc   r4, 20000
hot:
      sub   r4, r4, r1
      bt    r4, hot
      ldc   r2, 100
      setfreq r2
cool:
      add   r0, r0, r1
      bu    cool
  )";

  const TimePs window = microseconds(20.0);
  EnergyMachine m(0, 1, false, window);
  m.sys.slice(0, 0).sampler().record_trace(true);
  const Image image = assemble(kStepSrc);
  m.sys.find_core(0)->load(image);
  m.sys.find_core(0)->start(image.entry);
  m.sys.start_sampling(100'000.0);  // 10 us ADC period, simultaneous mode
  m.run_to(milliseconds(1.0));
  m.sys.finish_observability();
  m.sys.settle_energy();

  const Json doc = Json::parse(m.session.chrome_json());

  // Rail 0 feeds chips 0 and 1 — cores 0..3.  Sum their window powers.
  std::vector<std::vector<std::pair<double, double>>> cores;
  for (int i = 0; i < 4; ++i) {
    cores.push_back(counter_series(
        doc, m.sys.slice(0, 0).core_at(i).node_id(), "power W"));
    ASSERT_FALSE(cores.back().empty()) << "core " << i;
  }
  ASSERT_GE(cores[0].size(), 40u);  // 1 ms / 20 us windows

  // The DVFS step time, from core 0's freq_mhz counter.
  const auto freq = counter_series(
      doc, m.sys.slice(0, 0).core_at(0).node_id(), "freq_mhz");
  double step_us = -1.0;
  for (const auto& [ts, mhz] : freq) {
    if (mhz == 100.0) {
      step_us = ts;
      break;
    }
  }
  ASSERT_GT(step_us, 0.0) << "setfreq never executed";

  const AnalogFrontEnd fe;  // defaults == the slice's front end
  const double lsb_watts = fe.code_to_watts(1, 1.0);
  const double window_us = to_seconds(window) * 1e6;

  const auto& adc = m.sys.slice(0, 0).sampler().trace(0);  // rail 0
  ASSERT_GE(adc.size(), 50u);
  int checked = 0, before_step = 0, after_step = 0;
  double sum_before = 0.0, sum_after = 0.0;
  for (const PowerSample& s : adc) {
    const double ts_us = static_cast<double>(s.time) * 1e-6;
    // Window covering ts: the first sample at or after it.
    const double wt = std::ceil(ts_us / window_us) * window_us;
    // Exclude windows that straddle the DVFS step.
    if (wt - window_us < step_us && step_us <= wt) continue;
    double timeline = 0.0;
    bool have = true;
    for (const auto& series : cores) {
      const auto it = std::find_if(
          series.begin(), series.end(),
          [&](const auto& p) { return std::abs(p.first - wt) < 1e-6; });
      if (it == series.end()) {
        have = false;
        break;
      }
      timeline += it->second;
    }
    if (!have) continue;  // ts past the last full window
    const double bound = 4 * lsb_watts + 0.02 * timeline;
    EXPECT_NEAR(s.watts, timeline, bound)
        << "at ADC t=" << ts_us << " us (window " << wt << " us)";
    ++checked;
    if (ts_us < step_us) {
      ++before_step;
      sum_before += s.watts;
    } else {
      ++after_step;
      sum_after += s.watts;
    }
  }
  EXPECT_GE(checked, 40);
  ASSERT_GT(before_step, 5);
  ASSERT_GT(after_step, 5);
  // The step itself is visible through both paths: mean rail power drops
  // when core 0 falls from 500 MHz to 100 MHz.
  EXPECT_LT(sum_after / after_step, 0.9 * sum_before / before_step);
}

// ------------------------------------------------------------------ schema

TEST(ObsEnergySchema, AcceptsWellFormedAttribution) {
  const char* doc = R"({"energyAttribution": {
    "version": 1, "shards": 2,
    "accounts": {"core-baseline": 1.5e-6, "link-on-chip": 0},
    "totalJ": 3e-6,
    "buckets": [
      {"stack": "core_0x0000;t0;main", "j": 1.5e-6},
      {"stack": "node_0x0000;link;E", "j": 1.5e-6}
    ]}})";
  EXPECT_EQ(check_energy_attribution(Json::parse(doc)), "");
}

TEST(ObsEnergySchema, RejectsMalformedAttribution) {
  auto violation = [](const std::string& body) {
    return check_energy_attribution(Json::parse(body));
  };
  // Not an attribution dump at all (e.g. a metrics file fed to --check).
  EXPECT_NE(violation(R"({"counters": {}})"), "");
  // Unknown version.
  EXPECT_NE(violation(R"({"energyAttribution": {"version": 7, "shards": 1,
    "accounts": {}, "totalJ": 0, "buckets": []}})"), "");
  // Negative bucket energy.
  EXPECT_NE(violation(R"({"energyAttribution": {"version": 1, "shards": 1,
    "accounts": {}, "totalJ": 0,
    "buckets": [{"stack": "a", "j": -1}]}})"), "");
  // Stacks out of order (dump must be sorted for byte-compares).
  EXPECT_NE(violation(R"({"energyAttribution": {"version": 1, "shards": 1,
    "accounts": {}, "totalJ": 2,
    "buckets": [{"stack": "b", "j": 1}, {"stack": "a", "j": 1}]}})"), "");
  // Bucket total disagrees with totalJ.
  EXPECT_NE(violation(R"({"energyAttribution": {"version": 1, "shards": 1,
    "accounts": {}, "totalJ": 5,
    "buckets": [{"stack": "a", "j": 1}]}})"), "");
  // Missing accounts object.
  EXPECT_NE(violation(R"({"energyAttribution": {"version": 1, "shards": 1,
    "totalJ": 0, "buckets": []}})"), "");
}

TEST(ObsEnergySchema, TraceCheckValidatesEnergyCounterNames) {
  auto trace_with = [](const std::string& counter_name) {
    return R"({"traceEvents": [
      {"name": ")" + counter_name +
           R"(", "ph": "C", "cat": "energy", "pid": 1, "tid": 127,
        "ts": 0, "args": {"value": 1.0}}],
      "otherData": {"dropped_events": 0}})";
  };
  EXPECT_EQ(check_chrome_trace(Json::parse(trace_with("power W"))), "");
  EXPECT_EQ(check_chrome_trace(Json::parse(trace_with("total uJ"))), "");
  EXPECT_NE(check_chrome_trace(Json::parse(trace_with("power"))), "");
  EXPECT_NE(check_chrome_trace(Json::parse(trace_with("total J"))), "");
}

}  // namespace
}  // namespace swallow
