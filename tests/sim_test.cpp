// Unit tests for the discrete-event kernel, clocks and stats.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "sim/clock.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace swallow {
namespace {

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(100, [&] { fired.push_back(1); });
  q.schedule(50, [&] { fired.push_back(2); });
  q.schedule(100, [&] { fired.push_back(3); });  // same time as #1, later seq
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{2, 1, 3}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int count = 0;
  auto h = q.schedule(10, [&] { ++count; });
  q.schedule(20, [&] { ++count; });
  q.cancel(h);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(count, 1);
}

TEST(EventQueue, CancelInertHandleIsNoop) {
  EventQueue q;
  EventHandle h;
  EXPECT_NO_THROW(q.cancel(h));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto h = q.schedule(5, [] {});
  q.schedule(9, [] {});
  q.cancel(h);
  EXPECT_EQ(q.next_time(), 9);
}

TEST(EventQueue, CancelLoopKeepsMemoryBounded) {
  // A core re-arming its issue slot cancels on nearly every instruction;
  // tombstones must not accumulate without bound.
  EventQueue q;
  q.schedule(1'000'000, [] {});  // one long-lived survivor
  for (int i = 0; i < 100'000; ++i) {
    auto h = q.schedule(10 + i, [] {});
    q.cancel(h);
    ASSERT_LE(q.tombstones(), 64u) << "compaction failed to run at i=" << i;
  }
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 1'000'000);
}

TEST(EventQueue, CompactionKeepsEqualTimeOrder) {
  // Regression: convenience schedule() used to draw ties starting at 1 —
  // the same value a lane-0 Simulator's first explicit key uses.  Two
  // equal-time events could then carry byte-identical (time, stamp, tie)
  // keys, and tombstone compaction's make_heap was free to swap their pop
  // order, breaking determinism exactly when cancel pressure triggered a
  // compaction.  Bare ties now start in the reserved 0xFFFF lane, so the
  // explicit lane-0 key must always fire first, compaction or not.
  for (const bool compact : {false, true}) {
    EventQueue q;
    std::vector<int> fired;
    q.schedule(100, 0, 1, [&] { fired.push_back(1); });  // explicit lane 0
    q.schedule(100, [&] { fired.push_back(2); });        // bare, same time
    if (compact) {
      // Flood with tombstones so compaction rebuilds the heap while both
      // equal-time events are pending.
      for (int i = 0; i < 200; ++i) q.cancel(q.schedule(10 + i, [] {}));
      ASSERT_LE(q.tombstones(), 64u) << "compaction never ran";
    }
    while (!q.empty()) q.pop().callback();
    EXPECT_EQ(fired, (std::vector<int>{1, 2}))
        << (compact ? "after compaction" : "without compaction");
  }
}

TEST(EventQueue, RearmMovesEventWithoutRescheduling) {
  EventQueue q;
  std::vector<int> fired;
  auto h = q.schedule(100, 0, 1, [&] { fired.push_back(1); });
  q.schedule(50, 0, 2, [&] { fired.push_back(2); });
  // Pull the first event ahead of the second; it keeps its callback but
  // re-enters the order as if freshly scheduled.
  EXPECT_TRUE(q.rearm(h, 20, 0, 3));
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  // Fired handles can no longer be re-armed.
  EXPECT_FALSE(q.rearm(h, 500, 0, 4));
}

TEST(EventQueue, RearmCancelledHandleFails) {
  EventQueue q;
  auto h = q.schedule(10, [] {});
  q.cancel(h);
  EXPECT_FALSE(q.rearm(h, 20, 0, 1));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StampBreaksTiesBeforeSequence) {
  // Same fire time: the event with the earlier scheduling stamp wins even
  // if its tie value is larger — this is what lets a cross-domain message
  // carry its sender's key into a foreign queue.
  EventQueue q;
  std::vector<int> fired;
  q.schedule(100, 7, 99, [&] { fired.push_back(1); });
  q.schedule(100, 3, 100, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{2, 1}));
}

TEST(Simulator, RearmKeepsHandleLive) {
  Simulator sim;
  std::vector<TimePs> fired;
  EventHandle h = sim.after(100, [&] { fired.push_back(sim.now()); });
  EXPECT_TRUE(sim.rearm(h, 40));
  EXPECT_TRUE(sim.rearm(h, 60));  // re-arm again: handle stayed valid
  sim.run();
  EXPECT_EQ(fired, (std::vector<TimePs>{60}));
  EXPECT_FALSE(sim.rearm(h, 200));  // fired → stale
}

TEST(Simulator, InjectRequiresStrictFuture) {
  Simulator sim;
  sim.after(10, [] {});
  sim.run_until(50);
  EXPECT_THROW(sim.inject(50, 0, 1, [] {}), Error);
  bool fired = false;
  sim.inject(51, 0, 1, [&] { fired = true; });
  sim.run_until(51);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<TimePs> fired;
  sim.after(100, [&] { fired.push_back(sim.now()); });
  sim.after(300, [&] { fired.push_back(sim.now()); });
  sim.run_until(200);
  EXPECT_EQ(fired, (std::vector<TimePs>{100}));
  EXPECT_EQ(sim.now(), 200);
  sim.run_until(400);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_EQ(sim.now(), 400);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.after(10, chain);
  };
  sim.after(10, chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.after(100, [] {});
  sim.run();
  EXPECT_THROW(sim.at(50, [] {}), Error);
  EXPECT_THROW(sim.after(-1, [] {}), Error);
}

TEST(Simulator, DeadlineEventFires) {
  Simulator sim;
  bool fired = false;
  sim.after(100, [&] { fired = true; });
  sim.run_until(100);
  EXPECT_TRUE(fired);
}

TEST(Clock, CycleTimeConversions) {
  Clock c(500.0);  // 2 ns period
  EXPECT_EQ(c.period(), 2000);
  EXPECT_EQ(c.cycles_at(10'000), 5);
  EXPECT_EQ(c.time_of_cycle(5), 10'000);
  EXPECT_EQ(c.span(45), 90'000);  // 45 instructions at 500 MHz = 90 ns
}

TEST(Clock, FrequencyChangePreservesPhase) {
  Clock c(500.0);
  // Run 100 cycles at 500 MHz, then drop to 100 MHz (paper's DFS).
  const TimePs t1 = c.time_of_cycle(100);
  c.set_frequency(t1, 100.0);
  EXPECT_EQ(c.cycles_at(t1), 100);
  // Next cycle boundary is one 10 ns period later.
  EXPECT_EQ(c.time_of_cycle(101), t1 + 10'000);
  EXPECT_EQ(c.cycles_at(t1 + 25'000), 102);
}

TEST(Clock, AlignUpFindsBoundary) {
  Clock c(500.0);
  EXPECT_EQ(c.align_up(0), 0);
  EXPECT_EQ(c.align_up(1), 2000);
  EXPECT_EQ(c.align_up(2000), 2000);
  EXPECT_EQ(c.align_up(2001), 4000);
}

TEST(Clock, RejectsNonPositiveFrequency) {
  Clock c;
  EXPECT_THROW(c.set_frequency(0, 0.0), Error);
  EXPECT_THROW(c.set_frequency(0, -5.0), Error);
}

TEST(Stats, CounterAccumulates) {
  Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, SamplerMoments) {
  Sampler s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(Stats, HistogramBucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.5);
  h.add(9.9);
  h.add(10.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

}  // namespace
}  // namespace swallow
