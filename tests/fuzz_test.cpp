// Fuzz robustness: random instruction streams must never break the
// simulator — every run either executes, blocks or traps cleanly, and
// energy/time bookkeeping stays sane throughout.
#include <gtest/gtest.h>

#include "test_seed.h"

#include "arch/assembler.h"
#include "api/taskgen.h"
#include "board/system.h"
#include "common/rng.h"
#include "fault/fault.h"
#include "sim/simulator.h"

namespace swallow {
namespace {

TEST(Fuzz, RandomWordProgramsNeverBreakTheSimulator) {
  const std::uint64_t seed = test::test_seed(0xF0220);
  SWALLOW_SEED_TRACE(seed);
  Rng rng(seed);
  for (int iter = 0; iter < 150; ++iter) {
    Simulator sim;
    SystemConfig cfg;
    SwallowSystem sys(sim, cfg);
    Core& core = sys.core(0, 0, Layer::kVertical);
    // 64 completely random words as a "program".
    Image image;
    for (int w = 0; w < 64; ++w) {
      image.words.push_back(static_cast<std::uint32_t>(rng.next_u64()));
    }
    core.load(image);
    core.start();
    EXPECT_NO_THROW(sim.run_until(microseconds(200.0))) << "iter " << iter;
    // The core is in a well-defined state: trapped, finished, blocked or
    // still running — and bookkeeping holds.
    sys.settle_energy();
    EXPECT_GE(sys.ledger().grand_total(), 0.0);
  }
}

TEST(Fuzz, RandomValidOpcodeProgramsNeverBreakTheSimulator) {
  // Biased fuzz: well-formed encodings of random valid opcodes exercise
  // the execution paths more deeply than raw words (which mostly hit the
  // bad-opcode trap immediately).
  const std::uint64_t seed = test::test_seed(0xBEEF);
  SWALLOW_SEED_TRACE(seed);
  Rng rng(seed);
  int trapped = 0, running = 0, finished = 0;
  for (int iter = 0; iter < 150; ++iter) {
    Simulator sim;
    SystemConfig cfg;
    SwallowSystem sys(sim, cfg);
    Core& core = sys.core(1, 0, Layer::kHorizontal);
    Image image;
    for (int w = 0; w < 48; ++w) {
      Instruction ins;
      ins.op = static_cast<Opcode>(
          rng.next_below(static_cast<std::uint64_t>(Opcode::kOpcodeCount)));
      ins.ra = static_cast<std::uint8_t>(rng.next_below(14));
      ins.rb = static_cast<std::uint8_t>(rng.next_below(14));
      ins.rc = static_cast<std::uint8_t>(rng.next_below(14));
      ins.imm = static_cast<std::int32_t>(rng.next_below(65536)) - 32768;
      if (ins.op == Opcode::kLdc || ins.op == Opcode::kLdch) {
        ins.imm &= 0xFFFF;
      }
      // Keep branches short so some programs actually run for a while.
      if (opcode_info(ins.op).format == Format::kI ||
          ins.op == Opcode::kBt || ins.op == Opcode::kBf) {
        ins.imm = static_cast<std::int32_t>(rng.next_below(8)) - 4;
      }
      image.words.push_back(encode(ins));
    }
    core.load(image);
    core.start();
    EXPECT_NO_THROW(sim.run_until(microseconds(200.0))) << "iter " << iter;
    trapped += core.trapped();
    finished += core.finished();
    running += !core.trapped() && !core.finished();
  }
  // The mix should contain all three outcomes — evidence the fuzz actually
  // explores different behaviours.
  EXPECT_GT(trapped, 10);
  EXPECT_GT(running + finished, 10);
}

TEST(Fuzz, RandomChainWorkloadsAlwaysComplete) {
  // Random chains of tasks with random placement and message sizes must
  // always deliver.  Restricting each core to at most one incoming and
  // one outgoing channel makes wormhole completion provable: a receiver's
  // only wait is its own channel, so no stalled packet can hold a link
  // another packet needs indefinitely.  Denser random graphs CAN deadlock
  // through endpoint-coupled wormhole waits — the platform hazard §V.D
  // warns about and Soak.DiagnoseReportsDeadlockedProgram demonstrates.
  const std::uint64_t seed = test::test_seed(0x7A5C);
  SWALLOW_SEED_TRACE(seed);
  Rng rng(seed);
  for (int iter = 0; iter < 12; ++iter) {
    Simulator sim;
    SystemConfig cfg;
    cfg.slices_x = 1 + static_cast<int>(rng.next_below(2));
    SwallowSystem sys(sim, cfg);
    AppBuilder app(sys);

    // Random distinct cores via a deterministic shuffle.
    std::vector<int> core_order(static_cast<std::size_t>(sys.core_count()));
    for (std::size_t i = 0; i < core_order.size(); ++i) {
      core_order[i] = static_cast<int>(i);
    }
    for (std::size_t i = core_order.size() - 1; i > 0; --i) {
      std::swap(core_order[i],
                core_order[rng.next_below(static_cast<std::uint64_t>(i + 1))]);
    }

    const int n = 4 + static_cast<int>(rng.next_below(
                          static_cast<std::uint64_t>(sys.core_count() - 4)));
    std::vector<int> tasks;
    std::vector<std::vector<TaskStep>> steps(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      TaskSpec spec;
      const int chip = core_order[static_cast<std::size_t>(i)] / 2;
      tasks.push_back(app.add_task(
          spec, chip % cfg.chip_cols(), chip / cfg.chip_cols(),
          core_order[static_cast<std::size_t>(i)] % 2 == 0
              ? Layer::kVertical
              : Layer::kHorizontal));
      steps[static_cast<std::size_t>(i)].push_back(
          TaskStep::compute(100 + rng.next_below(2000)));
    }
    // Partition tasks into chains; connect consecutive chain members.
    int chain_start = 0;
    for (int i = 0; i < n; ++i) {
      const bool end_chain = i == n - 1 || rng.next_below(3) == 0;
      if (i > chain_start) {
        const std::uint64_t bytes = 16 + rng.next_below(480);
        const int ch = app.connect(tasks[static_cast<std::size_t>(i - 1)],
                                   tasks[static_cast<std::size_t>(i)]);
        // Receive before sending onward (the chain discipline).
        steps[static_cast<std::size_t>(i)].insert(
            steps[static_cast<std::size_t>(i)].begin(),
            TaskStep::recv(ch, bytes));
        steps[static_cast<std::size_t>(i - 1)].push_back(
            TaskStep::send(ch, bytes));
      }
      if (end_chain) chain_start = i + 1;
    }
    for (int i = 0; i < n; ++i) {
      app.set_steps(tasks[static_cast<std::size_t>(i)],
                    steps[static_cast<std::size_t>(i)]);
    }
    app.start();
    EXPECT_TRUE(app.run_to_completion(milliseconds(300.0)))
        << "iter " << iter << "\n" << sys.diagnose();
    EXPECT_EQ(sys.network().total_packets_sunk(), 0u) << "iter " << iter;
  }
}

TEST(Fuzz, RandomFaultPlansNeverBreakReliableLinks) {
  // Randomized FaultPlans (corruption storms, transient outages, switch
  // stalls) over CRC/retry-protected links.  Whatever the storm does:
  //  * the simulator never crashes or trips an invariant;
  //  * no token is ever duplicated into a receiver — a duplicate would
  //    shift the stream and trap the strict chkct discipline of the
  //    generated task code, which run_to_completion turns into a throw;
  //  * the energy ledger is monotonically non-decreasing throughout;
  //  * every byte is still delivered (packets are never mis-routed).
  const std::uint64_t seed = test::test_seed(0xFA117);
  SWALLOW_SEED_TRACE(seed);
  Rng rng(seed);
  for (int iter = 0; iter < 20; ++iter) {
    Simulator sim;
    SystemConfig cfg;
    cfg.slices_x = 2;
    cfg.reliable_links = true;
    SwallowSystem sys(sim, cfg);

    FaultPlan plan;
    plan.seed = rng.next_u64();
    const int nfaults = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < nfaults; ++f) {
      const NodeId node = lattice_node_id(
          static_cast<int>(rng.next_below(8)),
          static_cast<int>(rng.next_below(2)),
          rng.next_below(2) == 0 ? Layer::kVertical : Layer::kHorizontal);
      switch (rng.next_below(3)) {
        case 0:
          plan.corrupt_link(node, -1, 1e-4 + rng.next_double() * 5e-3);
          break;
        case 1:
          plan.link_outage(node, -1,
                           microseconds(1.0 + rng.next_double() * 100.0),
                           microseconds(1.0 + rng.next_double() * 15.0));
          break;
        default:
          plan.stall_switch(node,
                            microseconds(1.0 + rng.next_double() * 100.0),
                            microseconds(1.0 + rng.next_double() * 20.0));
          break;
      }
    }
    FaultInjector injector(sys, plan);
    injector.arm();

    AppBuilder app(sys);
    for (int p = 0; p < 6; ++p) {
      const auto place = [&] {
        return std::make_tuple(static_cast<int>(rng.next_below(8)),
                               static_cast<int>(rng.next_below(2)),
                               rng.next_below(2) == 0 ? Layer::kVertical
                                                      : Layer::kHorizontal);
      };
      auto [sx, sy, sl] = place();
      auto [dx, dy, dl] = place();
      if (sx == dx && sy == dy && sl == dl) dx = (dx + 1) % 8;
      TaskSpec tx, rx;
      const int a = app.add_task(tx, sx, sy, sl);
      const int b = app.add_task(rx, dx, dy, dl);
      const int ch = app.connect(a, b);
      const std::uint64_t bytes = 32 + rng.next_below(480);
      app.set_steps(a, {TaskStep::send(ch, bytes)});
      app.set_steps(b, {TaskStep::recv(ch, bytes)});
    }
    app.start();

    bool done = false;
    Joules prev = 0;
    for (int step = 0; step < 2000 && !done; ++step) {
      done = app.run_to_completion(sim.now() + microseconds(50.0));
      sys.settle_energy();
      const Joules total = sys.ledger().grand_total();
      EXPECT_GE(total, prev) << "iter " << iter << " step " << step;
      prev = total;
    }
    EXPECT_TRUE(done) << "iter " << iter << "\n" << sys.diagnose();
    EXPECT_EQ(sys.network().total_packets_sunk(), 0u) << "iter " << iter;
  }
}

TEST(Fuzz, RandomAssemblerInputNeverCrashes) {
  // Garbage text must produce Error (line-diagnosed), never UB.
  const std::uint64_t seed = test::test_seed(0xA53);
  SWALLOW_SEED_TRACE(seed);
  Rng rng(seed);
  const char charset[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 ,:#.\nrlspbtx-";
  for (int iter = 0; iter < 300; ++iter) {
    std::string src;
    const std::size_t len = 10 + rng.next_below(200);
    for (std::size_t i = 0; i < len; ++i) {
      src += charset[rng.next_below(sizeof(charset) - 1)];
    }
    try {
      const Image img = assemble(src);
      (void)img;  // occasionally random text is a valid program
    } catch (const Error&) {
      // expected for almost every input
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace swallow
