// Fault-injection, resilient-link and watchdog tests (src/fault/):
//  * an empty FaultPlan (and the injector machinery itself) leaves a run
//    bit-identical to one without any fault layer;
//  * CRC/retry framing delivers byte-exact payloads through a flaky
//    off-board cable, charging the extra wire traffic to the ledger;
//  * without retries the same corruption wedges the wormhole protocol and
//    the watchdog reports *which* cores are blocked instead of hanging;
//  * retry exhaustion on a long outage declares the link dead;
//  * table-router systems reprogram routes around a killed link.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/netstat.h"
#include "analysis/report.h"
#include "api/patterns.h"
#include "api/taskgen.h"
#include "arch/assembler.h"
#include "board/system.h"
#include "board/telemetry.h"
#include "common/error.h"
#include "common/strings.h"
#include "fault/fault.h"
#include "fault/reroute.h"
#include "fault/watchdog.h"
#include "sim/simulator.h"

namespace swallow {
namespace {

/// The row-0 east FFC cable of a 2x1-slice machine leaves the horizontal
/// switch of chip (3, 0) in direction East (board/system.cpp wiring).
const NodeId kCableTxNode = lattice_node_id(3, 0, Layer::kHorizontal);

/// A 6-stage pipeline laid east along chip row 0 (horizontal layer), so
/// exactly one inter-stage hop (stage 2 -> 3) crosses the off-board cable.
std::vector<Placement> row0_pipeline_places() {
  std::vector<Placement> places;
  for (int x = 1; x < 7; ++x) {
    places.push_back({x, 0, Layer::kHorizontal});
  }
  return places;
}

struct RunResult {
  bool completed = false;
  TimePs time = 0;
  Joules total = 0;
  Joules cable = 0;
  FaultCounters faults;
  bool stalled = false;
  bool quiesced = false;
  std::vector<StallReport> stall_reports;
};

/// Run the cross-cable pipeline on a 2x1 system, optionally with a fault
/// plan; a watchdog monitors the whole run.
RunResult pipeline_run(bool reliable, const FaultPlan* plan) {
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = 2;
  cfg.reliable_links = reliable;
  SwallowSystem sys(sim, cfg);

  FaultInjector injector(sys, plan != nullptr ? *plan : FaultPlan{});
  injector.arm();
  Watchdog wd(sys);
  wd.arm();

  AppBuilder app(sys);
  PipelineConfig pcfg;
  pcfg.stages = 6;
  pcfg.items = 24;
  pcfg.work_per_item = 500;
  pcfg.bytes_per_item = 128;
  build_pipeline(app, pcfg, row0_pipeline_places());
  app.start();

  RunResult r;
  try {
    r.completed = app.run_to_completion(milliseconds(20.0));
  } catch (const Error&) {
    r.completed = false;  // a trap is "not hanging" but not success either
  }
  r.time = sim.now();
  sys.settle_energy();
  r.total = sys.ledger().grand_total();
  r.cable = sys.ledger().total(EnergyAccount::kLinkCable);
  r.faults = sys.network().total_fault_counters();
  // Give the watchdog a full flat window after the workload ends (whether
  // it completed, trapped or wedged) so it can reach its verdict.
  sim.run_until(sim.now() + microseconds(200.0));
  EXPECT_FALSE(wd.stalled() && r.completed)
      << "watchdog stalled on a run that completed";
  r.stalled = wd.stalled();
  r.quiesced = wd.quiesced();
  r.stall_reports = wd.reports();
  return r;
}

// ------------------------------------------------------------ bit identity

TEST(FaultFree, InjectorWithEmptyPlanIsBitIdentical) {
  // Arming the fault layer with nothing to inject must not perturb the
  // simulation at all: identical completion time, identical energy.
  auto run = [](bool with_fault_layer) {
    Simulator sim;
    SystemConfig cfg;
    cfg.slices_x = 2;
    SwallowSystem sys(sim, cfg);
    FaultInjector injector(sys, FaultPlan{});
    Watchdog wd(sys);
    if (with_fault_layer) {
      injector.arm();
      wd.arm();
    }
    AppBuilder app(sys);
    PipelineConfig pcfg;
    pcfg.stages = 6;
    pcfg.items = 16;
    pcfg.bytes_per_item = 64;
    build_pipeline(app, pcfg, row0_pipeline_places());
    app.start();
    EXPECT_TRUE(app.run_to_completion(milliseconds(20.0)));
    sys.settle_energy();
    return std::make_pair(app.completion_time(), sys.ledger().grand_total());
  };
  const auto [t_plain, e_plain] = run(false);
  const auto [t_fault, e_fault] = run(true);
  EXPECT_EQ(t_plain, t_fault);
  EXPECT_DOUBLE_EQ(e_plain, e_fault);
}

TEST(FaultFree, ReliableFramingCostsEnergyButDeliversIdentically) {
  // Turning the CRC/retry framing on with zero faults changes wire bits
  // (and therefore energy and timing) but never behaviour.
  const RunResult plain = pipeline_run(false, nullptr);
  const RunResult framed = pipeline_run(true, nullptr);
  ASSERT_TRUE(plain.completed);
  ASSERT_TRUE(framed.completed);
  EXPECT_TRUE(framed.quiesced);
  // 10 bits per link token instead of 8: strictly more link energy.
  EXPECT_GT(framed.cable, plain.cable);
  EXPECT_EQ(plain.faults.total(), 0u);
  EXPECT_EQ(framed.faults.total(), 0u);
}

// ------------------------------------------------- retries deliver payloads

TEST(ResilientLink, CorruptedCableDeliversByteExactPayloads) {
  // Sender at chip (3,0) streams 400 known words to chip (4,0) across the
  // flaky row-0 FFC cable; the receiver checksums what it actually got.
  // With CRC/retry framing the sum must be exact despite the corruption.
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = 2;
  cfg.reliable_links = true;
  SwallowSystem sys(sim, cfg);

  FaultPlan plan;
  plan.seed = 0x5EED;
  plan.corrupt_link(kCableTxNode, kDirEast, 3e-3);
  FaultInjector injector(sys, plan);
  injector.arm();

  Core& tx = sys.core(3, 0, Layer::kHorizontal);
  Core& rx = sys.core(4, 0, Layer::kHorizontal);
  const NodeId rx_node = SwallowSystem::node_id(4, 0, Layer::kHorizontal);
  tx.load(assemble(strprintf(R"(
      getr  r0, 2
      ldc   r1, %u
      ldch  r1, 2
      setd  r0, r1
      ldc   r2, 0
      ldc   r3, 400
  loop:
      out   r0, r2
      outct r0, 1
      addi  r2, r2, 1
      subi  r3, r3, 1
      bt    r3, loop
      texit
  )", static_cast<unsigned>(rx_node))));
  rx.load(assemble(R"(
      getr  r0, 2
      ldc   r2, 0
      ldc   r3, 400
  loop:
      in    r1, r0
      chkct r0, 1
      add   r2, r2, r1
      subi  r3, r3, 1
      bt    r3, loop
      printi r2
      texit
  )"));
  tx.start();
  rx.start();
  sim.run_until(milliseconds(50.0));

  ASSERT_FALSE(tx.trapped()) << tx.trap().message;
  ASSERT_FALSE(rx.trapped()) << rx.trap().message;
  ASSERT_TRUE(rx.finished());
  EXPECT_EQ(rx.console(), "79800");  // sum 0..399

  const FaultCounters f = sys.network().total_fault_counters();
  EXPECT_GT(f.tokens_corrupted, 0u);
  EXPECT_GT(f.crc_rejects, 0u);
  EXPECT_GT(f.retransmissions, 0u);
  EXPECT_EQ(f.links_marked_dead, 0u);
  // Every corrupted token was re-sent, never re-delivered: delivery is
  // exactly-once (the checksum above proves no loss *and* no duplication).
  EXPECT_GE(f.retransmissions, f.crc_rejects);
}

// -------------------------------------------------- the acceptance scenario

TEST(ResilientLink, AcceptanceFlakyCableRetriesVsNoRetries) {
  FaultPlan plan;
  plan.seed = 0xCAB1E;
  plan.corrupt_link(kCableTxNode, kDirEast, 1e-3);

  // Fault-free reliable run: the energy baseline.
  const RunResult clean = pipeline_run(true, nullptr);
  ASSERT_TRUE(clean.completed);

  // Retries ON: the pipeline completes, the watchdog never fires, and the
  // recovery traffic costs strictly more cable energy.
  const RunResult faulty = pipeline_run(true, &plan);
  ASSERT_TRUE(faulty.completed);
  EXPECT_GT(faulty.faults.crc_rejects, 0u);
  EXPECT_GT(faulty.faults.retransmissions, 0u);
  EXPECT_GT(faulty.cable, clean.cable);

  // Retries OFF: the same corruption wedges the wormhole protocol; the
  // watchdog names the blocked cores instead of letting the run hang.
  FaultPlan harsh = plan;
  harsh.faults[0].rate = 5e-3;  // make the first protocol hit early
  const RunResult broken = pipeline_run(false, &harsh);
  EXPECT_FALSE(broken.completed);
  ASSERT_TRUE(broken.stalled);
  const StallReport& report = broken.stall_reports.front();
  EXPECT_FALSE(report.diagnosis.healthy());
  ASSERT_FALSE(report.diagnosis.blocked.empty());
  // The rendered report names a blocked core and what it waits on.
  const std::string text = render_stall_report(report);
  EXPECT_NE(text.find("blocked"), std::string::npos) << text;
  EXPECT_NE(text.find("core"), std::string::npos) << text;
}

// ----------------------------------------------------------------- watchdog

TEST(WatchdogTest, QuiescesOnHealthyCompletion) {
  Simulator sim;
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  Watchdog wd(sys);
  wd.arm();

  AppBuilder app(sys);
  TaskSpec a, b;
  const int ta = app.add_task(a, 0, 0, Layer::kVertical);
  const int tb = app.add_task(b, 2, 1, Layer::kVertical);
  const int ch = app.connect(ta, tb);
  app.set_steps(ta, {TaskStep::compute(2000), TaskStep::send(ch, 256)});
  app.set_steps(tb, {TaskStep::recv(ch, 256), TaskStep::compute(2000)});
  app.start();
  ASSERT_TRUE(app.run_to_completion(milliseconds(10.0)));

  // Let the watchdog observe a full flat window after the work ends.
  sim.run_until(sim.now() + microseconds(60.0));
  EXPECT_TRUE(wd.quiesced());
  EXPECT_FALSE(wd.stalled());
  EXPECT_FALSE(wd.armed());
}

TEST(WatchdogTest, FlagsTreeReduceWormholeDeadlock) {
  // §V.D wormhole hazard: multi-word reduction messages from sibling
  // leaves contend for the root's last-hop link.  The sibling that binds
  // the link first stalls (the root is waiting for a *different* child
  // first), and the child the root wants is parked behind it forever.
  // The child the root reads first is placed farthest away so a nearer
  // sibling always wins the bind race.
  Simulator sim;
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  Watchdog::Config wcfg;
  wcfg.period = microseconds(5.0);
  wcfg.window_periods = 4;
  Watchdog wd(sys, wcfg);
  wd.arm();
  int stall_callbacks = 0;
  wd.set_on_stall([&](const StallReport&) { ++stall_callbacks; });

  AppBuilder app(sys);
  TreeReduceConfig tcfg;
  tcfg.leaves = 4;
  tcfg.fanout = 4;
  tcfg.bytes_per_value = 64;  // > one word: can hold links mid-message
  tcfg.work_per_leaf = 2000;
  tcfg.acknowledge_deadlock_hazard = true;
  const std::vector<Placement> places = {
      {3, 1, Layer::kHorizontal},  // child 0: read first, farthest away
      {1, 0, Layer::kVertical},    // nearer siblings win the shared link
      {1, 1, Layer::kVertical},
      {2, 0, Layer::kVertical},
      {0, 0, Layer::kVertical},    // root
  };
  build_tree_reduce(app, tcfg, places);
  app.start();

  EXPECT_FALSE(app.run_to_completion(milliseconds(2.0)));
  ASSERT_TRUE(wd.stalled());
  EXPECT_EQ(stall_callbacks, 1);
  const StallReport& report = wd.reports().front();
  EXPECT_FALSE(report.diagnosis.blocked.empty());
  EXPECT_FALSE(report.diagnosis.routes.empty());  // held wormhole routes
  EXPECT_GT(report.progress, 0u);
  // The root is among the blocked cores, waiting on a channel input.
  const NodeId root = SwallowSystem::node_id(0, 0, Layer::kVertical);
  bool root_blocked = false;
  for (const auto& s : report.diagnosis.blocked) {
    root_blocked |= (s.core == root && s.waiting_on == Core::WaitKind::kChanIn);
  }
  EXPECT_TRUE(root_blocked) << render_stall_report(report);
}

TEST(WatchdogTest, RetriesCountAsProgressDuringFaultStorm) {
  // A link fighting through heavy corruption is live, not stalled: the
  // fault-counter term of the progress metric must keep the watchdog calm
  // even when corruption makes forward progress crawl.
  FaultPlan plan;
  plan.seed = 99;
  plan.corrupt_link(kCableTxNode, kDirEast, 2e-2);
  const RunResult r = pipeline_run(true, &plan);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.faults.retransmissions, 0u);
  EXPECT_FALSE(r.stalled);
  EXPECT_TRUE(r.quiesced);
}

// --------------------------------------------------- link death & rerouting

TEST(Degradation, LongOutageExhaustsRetriesAndKillsTheLink) {
  // A cable unplugged for longer than the full retry/backoff schedule:
  // the transmitter declares the link dead and the watchdog reports the
  // receiver that will now never get its data.
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = 2;
  cfg.reliable_links = true;
  SwallowSystem sys(sim, cfg);

  FaultPlan plan;
  plan.link_outage(kCableTxNode, kDirEast, microseconds(1.0),
                   milliseconds(50.0));
  FaultInjector injector(sys, plan);
  injector.arm();
  Watchdog wd(sys);
  wd.arm();

  AppBuilder app(sys);
  TaskSpec a, b;
  const int ta = app.add_task(a, 3, 0, Layer::kHorizontal);
  const int tb = app.add_task(b, 4, 0, Layer::kHorizontal);
  const int ch = app.connect(ta, tb);
  app.set_steps(ta, {TaskStep::send(ch, 512)});
  app.set_steps(tb, {TaskStep::recv(ch, 512)});
  app.start();
  EXPECT_FALSE(app.run_to_completion(milliseconds(5.0)));

  const FaultCounters f = sys.network().total_fault_counters();
  EXPECT_GT(f.tokens_dropped, 0u);
  EXPECT_GE(f.retry_timeouts, 8u);  // the full Config::max_retry_rounds
  EXPECT_GE(f.links_marked_dead, 1u);
  ASSERT_TRUE(wd.stalled());
  EXPECT_FALSE(wd.reports().front().diagnosis.blocked.empty());
}

TEST(Degradation, TableRoutersRerouteAroundKilledLink) {
  // Kill the row-0 cable before traffic starts; the ResilienceManager
  // reprograms every routing table over the surviving topology (the row-1
  // cable) and the cross-slice transfer still completes.
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = 2;
  cfg.use_table_routers = true;
  SwallowSystem sys(sim, cfg);

  ResilienceManager rm(sys);
  rm.arm();
  FaultPlan plan;
  plan.kill_link(kCableTxNode, kDirEast, microseconds(1.0));
  FaultInjector injector(sys, plan);
  injector.arm();

  AppBuilder app(sys);
  TaskSpec a, b;
  const int ta = app.add_task(a, 3, 0, Layer::kHorizontal);
  const int tb = app.add_task(b, 4, 0, Layer::kHorizontal);
  const int ch = app.connect(ta, tb);
  // Wait out the kill (1 us) + reroute latency (50 us) before sending.
  app.set_steps(ta, {TaskStep::delay_us(200), TaskStep::send(ch, 1024)});
  app.set_steps(tb, {TaskStep::recv(ch, 1024)});
  app.start();
  EXPECT_TRUE(app.run_to_completion(milliseconds(20.0)));

  ASSERT_EQ(rm.events().size(), 1u);
  const RerouteEvent& ev = rm.events().front();
  EXPECT_EQ(ev.node, kCableTxNode);
  EXPECT_EQ(ev.direction, kDirEast);
  EXPECT_GT(ev.routes_changed, 0);
  // Both directions of the physical cable were declared dead.
  EXPECT_EQ(sys.network().total_fault_counters().links_marked_dead, 2u);
  // The reroute charged its control-plane energy.
  sys.settle_energy();
  EXPECT_GT(sys.ledger().total(EnergyAccount::kNetworkInterface), 0.0);
  // A second recompute over the same topology changes nothing.
  EXPECT_EQ(rm.recompute_routes(), 0);
}

// ------------------------------------------------------ counters & analysis

TEST(FaultReporting, NetstatRendersFaultSummary) {
  FaultCounters f;
  EXPECT_EQ(render_fault_summary(f), "");  // all-zero: nothing to report
  f.tokens_corrupted = 7;
  f.crc_rejects = 7;
  f.retransmissions = 9;
  const std::string text = render_fault_summary(f);
  EXPECT_NE(text.find("tokens corrupted"), std::string::npos) << text;
  EXPECT_NE(text.find("retransmissions"), std::string::npos) << text;
  EXPECT_NE(text.find("9"), std::string::npos) << text;
  // Zero counters stay out of the table.
  EXPECT_EQ(text.find("links marked dead"), std::string::npos) << text;
}

TEST(FaultReporting, NetworkStatsCollectFaultDeltas) {
  FaultPlan plan;
  plan.seed = 3;
  plan.corrupt_link(kCableTxNode, kDirEast, 5e-3);
  Watchdog* wd = nullptr;
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = 2;
  cfg.reliable_links = true;
  SwallowSystem sys(sim, cfg);
  FaultInjector injector(sys, plan);
  injector.arm();
  (void)wd;

  const NetworkStats before = collect_network_stats(sys.network(), sys.ledger());
  EXPECT_EQ(before.faults.total(), 0u);

  AppBuilder app(sys);
  TaskSpec a, b;
  const int ta = app.add_task(a, 3, 0, Layer::kHorizontal);
  const int tb = app.add_task(b, 4, 0, Layer::kHorizontal);
  const int ch = app.connect(ta, tb);
  app.set_steps(ta, {TaskStep::send(ch, 2048)});
  app.set_steps(tb, {TaskStep::recv(ch, 2048)});
  app.start();
  ASSERT_TRUE(app.run_to_completion(milliseconds(20.0)));

  const NetworkStats after = collect_network_stats(sys.network(), sys.ledger());
  const NetworkStats delta = stats_delta(after, before);
  EXPECT_GT(delta.faults.crc_rejects, 0u);
  const std::string text = render_network_stats(after, sim.now());
  EXPECT_NE(text.find("retransmissions"), std::string::npos) << text;
}

TEST(FaultReporting, TelemetryStreamsFaultCountersToHost) {
  // Degraded links are visible at the host: the telemetry streamer sends
  // changed fault counters on dedicated channels above kFaultChannelBase.
  Simulator sim;
  SystemConfig cfg;
  cfg.ethernet_bridges = 1;
  cfg.reliable_links = true;
  SwallowSystem sys(sim, cfg);

  FaultPlan plan;
  plan.seed = 11;
  plan.corrupt_link(SwallowSystem::node_id(0, 0, Layer::kHorizontal),
                    kDirEast, 2e-2);
  FaultInjector injector(sys, plan);
  injector.arm();

  std::vector<TelemetryStreamer::Record> fault_records;
  sys.bridge(0).set_host_receiver([&](std::vector<std::uint8_t> packet) {
    for (const auto& r : TelemetryStreamer::decode(packet)) {
      if (r.channel >= TelemetryStreamer::kFaultChannelBase) {
        fault_records.push_back(r);
      }
    }
  });
  TelemetryStreamer streamer(sim, sys.slice(0, 0), sys.bridge(0),
                             microseconds(50.0));
  streamer.enable_fault_stream();
  streamer.start();

  AppBuilder app(sys);
  TaskSpec a, b;
  const int ta = app.add_task(a, 0, 0, Layer::kHorizontal);
  const int tb = app.add_task(b, 3, 0, Layer::kHorizontal);
  const int ch = app.connect(ta, tb);
  app.set_steps(ta, {TaskStep::send(ch, 4096)});
  app.set_steps(tb, {TaskStep::recv(ch, 4096)});
  app.start();
  ASSERT_TRUE(app.run_to_completion(milliseconds(20.0)));
  sim.run_until(sim.now() + microseconds(500.0));
  streamer.stop();

  ASSERT_GT(sys.slice(0, 0).fault_counters().total(), 0u);
  ASSERT_FALSE(fault_records.empty());
  for (const auto& r : fault_records) {
    EXPECT_LT(r.channel - TelemetryStreamer::kFaultChannelBase,
              FaultCounters::kFieldCount);
    EXPECT_EQ(r.watts, 0.0);  // fault channels carry counts, not power
    EXPECT_GT(r.code, 0u);
  }
}

}  // namespace
}  // namespace swallow
