// Differential conformance harness (src/check/): golden interpreter,
// typed program generator, differential executor and delta-shrinker.
//
// The heavy sweeps live in the swallow_check CLI (cli_check_sweep, soak
// label); this suite pins the component contracts with small seed counts:
//   * the golden interpreter agrees with the core on handcrafted programs,
//   * every generated program assembles on every core,
//   * single-core generated programs match the golden model exactly,
//   * a planted golden-model bug is detected AND shrinks to a repro of at
//     most 16 instructions,
//   * repro files round-trip through format_repro/parse_repro.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "arch/assembler.h"
#include "arch/trap.h"
#include "check/differ.h"
#include "check/progen.h"
#include "check/ref_isa.h"
#include "check/shrink.h"
#include "common/error.h"
#include "test_seed.h"

namespace swallow {
namespace {

// Matrix trimmed to the sequential engine: one simulator run per
// differential, fast enough to sweep dozens of seeds inside a unit test.
DifferOptions golden_only_options() {
  DifferOptions o;
  o.jobs = {0};
  o.with_tracing = false;
  o.with_faults = false;
  return o;
}

// ------------------------------------------------------------- ref_isa

TEST(RefIsa, ExecutesStraightLineProgram) {
  const Image image = assemble(
      "    ldc r0, 30\n"
      "    ldc r1, 12\n"
      "    add r2, r0, r1\n"
      "    texit\n");
  const RefResult r = ref_run(image);
  EXPECT_EQ(r.stop, RefStop::kFinished);
  EXPECT_EQ(r.regs[2], 42u);
  EXPECT_EQ(r.retired, 4u);
}

TEST(RefIsa, ReportsTrapWithoutRetiringIt) {
  const Image image = assemble(
      "    ldc r0, 1\n"
      "    ldc r1, 0\n"
      "    divu r2, r0, r1\n");
  const RefResult r = ref_run(image);
  EXPECT_EQ(r.stop, RefStop::kTrapped);
  EXPECT_EQ(r.trap, TrapKind::kBadOperand);
  EXPECT_EQ(r.pc, 2u);       // pc parked on the faulting instruction
  EXPECT_EQ(r.retired, 2u);  // the divide itself does not retire
}

TEST(RefIsa, FlagsResourceInstructionsAsUnsupported) {
  const RefResult r = ref_run(assemble("    getr r0, 2\n    texit\n"));
  EXPECT_EQ(r.stop, RefStop::kUnsupported);
}

TEST(RefIsa, StepLimitStopsRunawayLoops) {
  RefOptions o;
  o.max_steps = 100;
  const RefResult r = ref_run(assemble("spin:\n    bu spin\n"), o);
  EXPECT_EQ(r.stop, RefStop::kStepLimit);
}

TEST(RefIsa, InjectedBugPerturbsOddOddAddOnly) {
  const Image image = assemble(
      "    ldc r0, 3\n"
      "    ldc r1, 5\n"
      "    add r2, r0, r1\n"  // odd + odd: bug adds one
      "    ldc r3, 4\n"
      "    add r4, r0, r3\n"  // odd + even: unaffected
      "    texit\n");
  const RefResult clean = ref_run(image);
  RefOptions bugged;
  bugged.inject_bug = kRefBugAddOddOperands;
  const RefResult buggy = ref_run(image, bugged);
  EXPECT_EQ(clean.regs[2], 8u);
  EXPECT_EQ(buggy.regs[2], 9u);
  EXPECT_EQ(clean.regs[4], buggy.regs[4]);
}

TEST(Fnv1a64, MatchesPublishedVectors) {
  EXPECT_EQ(fnv1a64(std::string()), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64(std::string("a")), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64(std::string("foobar")), 0x85944171f73967e8ull);
}

// -------------------------------------------------------------- progen

TEST(Progen, EveryGeneratedCoreAssembles) {
  const std::uint64_t base = test::test_seed(1);
  SWALLOW_SEED_TRACE(base);
  for (std::uint64_t seed = base; seed < base + 50; ++seed) {
    const GenProgram p = differ_generate(seed);
    const SourceSet s = render_sources(p);
    ASSERT_EQ(s.sources.size(), p.core_indices.size()) << "seed " << seed;
    for (std::size_t i = 0; i < s.sources.size(); ++i) {
      std::string error;
      EXPECT_TRUE(try_assemble(s.sources[i], &error).has_value())
          << "seed " << seed << " core " << i << ": " << error;
    }
  }
}

TEST(Progen, ShrunkSubsetsStillAssemble) {
  const std::uint64_t seed = test::test_seed(7);
  SWALLOW_SEED_TRACE(seed);
  const GenProgram p = differ_generate(seed);
  // Drop each unit in turn (with its comm partner, as the shrinker does)
  // and re-render: every subset must still be well-formed.
  for (std::size_t u = 0; u < p.units.size(); ++u) {
    std::vector<bool> active(p.units.size(), true);
    for (std::size_t v = 0; v < p.units.size(); ++v) {
      if (v == u || (p.units[u].pair_id >= 0 &&
                     p.units[v].pair_id == p.units[u].pair_id)) {
        active[v] = false;
      }
    }
    const SourceSet s = render_sources(p, active);
    for (std::size_t i = 0; i < s.sources.size(); ++i) {
      std::string error;
      EXPECT_TRUE(try_assemble(s.sources[i], &error).has_value())
          << "without unit " << u << ", core " << i << ": " << error;
    }
  }
}

TEST(Progen, GoldenEligibleProgramsAvoidUnsupportedInstructions) {
  const std::uint64_t base = test::test_seed(1);
  SWALLOW_SEED_TRACE(base);
  int eligible = 0;
  for (std::uint64_t seed = base; seed < base + 40; ++seed) {
    const GenProgram p = differ_generate(seed);
    if (!p.golden_eligible) continue;
    ++eligible;
    const SourceSet s = render_sources(p);
    ASSERT_EQ(s.sources.size(), 1u);
    const RefResult r = ref_run(assemble(s.sources[0]));
    EXPECT_NE(r.stop, RefStop::kUnsupported)
        << "seed " << seed << " hit " << opcode_info(r.unsupported).mnemonic;
  }
  EXPECT_GT(eligible, 0) << "seed range produced no golden-eligible programs";
}

// -------------------------------------------------------------- differ

TEST(Differ, SingleCoreSeedsMatchGoldenModel) {
  const std::uint64_t base = test::test_seed(1);
  SWALLOW_SEED_TRACE(base);
  const DifferOptions o = golden_only_options();
  int checked = 0;
  for (std::uint64_t seed = base; seed < base + 40; ++seed) {
    if (differ_generate(seed).core_indices.size() != 1) continue;
    ++checked;
    const DiffResult d = run_differential_seed(seed, o);
    EXPECT_FALSE(d.diverged()) << "seed " << seed << ": " << d.divergence;
  }
  EXPECT_GT(checked, 0);
}

TEST(Differ, FullMatrixAgreesOnMultiCoreSeeds) {
  const std::uint64_t base = test::test_seed(1);
  SWALLOW_SEED_TRACE(base);
  const DifferOptions o;  // full matrix: jobs x tracing x faults
  int checked = 0;
  for (std::uint64_t seed = base; seed < base + 12 && checked < 3; ++seed) {
    if (differ_generate(seed).core_indices.size() < 2) continue;
    ++checked;
    const DiffResult d = run_differential_seed(seed, o);
    EXPECT_FALSE(d.diverged()) << "seed " << seed << ": " << d.divergence;
    for (const RunObs& run : d.runs) {
      EXPECT_TRUE(run.completed) << run.config.name();
      EXPECT_EQ(run.conservation_slack, 0) << run.config.name();
    }
  }
  EXPECT_EQ(checked, 3);
}

TEST(Differ, ReproFilesRoundTrip) {
  const std::uint64_t seed = test::test_seed(3);
  SWALLOW_SEED_TRACE(seed);
  const SourceSet s = render_sources(differ_generate(seed));
  const SourceSet back = parse_repro(format_repro(s, "some divergence"));
  EXPECT_EQ(back.seed, s.seed);
  ASSERT_EQ(back.core_indices, s.core_indices);
  ASSERT_EQ(back.sources.size(), s.sources.size());
  for (std::size_t i = 0; i < s.sources.size(); ++i) {
    // Whitespace may be normalised; the assembled images must match.
    EXPECT_EQ(assemble(back.sources[i]).words, assemble(s.sources[i]).words)
        << "core " << i;
  }
}

TEST(Differ, ParseReproRejectsGarbage) {
  EXPECT_THROW(parse_repro("not a repro file"), Error);
}

// -------------------------------------------------------------- shrink

TEST(Shrink, CountsOnlyInstructionLines) {
  SourceSet s;
  s.sources.push_back(
      "# comment\n"
      "label:\n"
      "    ldc r0, 1\n"
      "\n"
      "    texit\n"
      "data: .word 0\n");
  EXPECT_EQ(count_instruction_lines(s), 2);
}

TEST(Shrink, NonDivergingProgramReportsNotReproduced) {
  const std::uint64_t seed = test::test_seed(1);
  SWALLOW_SEED_TRACE(seed);
  ShrinkOptions o;
  o.differ = golden_only_options();
  const ShrinkResult r = shrink_program(differ_generate(seed), o);
  EXPECT_FALSE(r.reproduced);
}

// The headline acceptance test: plant a semantic bug in the golden model's
// ADD (odd+odd operands only), prove the sweep FINDS it, and prove the
// shrinker reduces the failing program to a repro of at most 16
// instructions that still reproduces the divergence.
TEST(Shrink, PlantedBugShrinksToSmallRepro) {
  DifferOptions o = golden_only_options();
  o.inject_ref_bug = kRefBugAddOddOperands;

  // Find the first seed whose generated program trips the planted bug.
  std::uint64_t bad_seed = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    if (run_differential_seed(seed, o).diverged()) {
      bad_seed = seed;
      break;
    }
  }
  ASSERT_NE(bad_seed, 0u) << "sweep failed to detect the planted bug";

  ShrinkOptions so;
  so.differ = o;
  const ShrinkResult r = shrink_program(differ_generate(bad_seed), so);
  ASSERT_TRUE(r.reproduced);
  EXPECT_FALSE(r.divergence.empty());
  EXPECT_LE(r.instruction_count, 16)
      << "shrunk repro still has " << r.instruction_count
      << " instructions:\n" << format_repro(r.sources, r.divergence);

  // The minimal program still diverges when re-run from its rendered
  // sources — exactly what `swallow_check --repro` will do.
  EXPECT_TRUE(run_differential(r.sources, o).diverged());

  // And agrees once the bug shim is removed: the divergence was the
  // planted bug, not a latent engine issue.
  EXPECT_FALSE(run_differential(r.sources, golden_only_options()).diverged());
}

}  // namespace
}  // namespace swallow
