// Capstone integration: every subsystem at once on a 2x2-slice, 64-core
// machine — network boot through the resident loader, nOS services, a DFS
// governor, telemetry streaming, ADC sampling and a pipeline workload all
// running simultaneously — plus pipeline scaling properties.
#include <gtest/gtest.h>

#include "api/governor.h"
#include "api/nos.h"
#include "api/patterns.h"
#include "api/taskgen.h"
#include "arch/assembler.h"
#include "board/loader.h"
#include "board/system.h"
#include "board/telemetry.h"
#include "sim/simulator.h"

namespace swallow {
namespace {

TEST(Integration, EverythingAtOnce) {
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = 2;
  cfg.slices_y = 2;
  cfg.ethernet_bridges = 2;
  SwallowSystem sys(sim, cfg);
  sys.enable_loss_integration();
  sys.start_sampling(100'000.0);

  // --- Telemetry from slice (0,0) out of bridge 0.
  std::uint64_t telemetry_records = 0;
  sys.bridge(0).set_host_receiver([&](std::vector<std::uint8_t> p) {
    telemetry_records += TelemetryStreamer::decode(p).size();
  });
  TelemetryStreamer streamer(sim, sys.slice(0, 0), sys.bridge(0));
  streamer.start();

  // --- Network boot through the in-ISA resident loader on a far core.
  Core& booted = sys.core(7, 3, Layer::kHorizontal);
  install_resident_loader(booted);
  sys.boot_image_via_resident_loader(0, booted.node_id(), assemble(R"(
      ldc    r0, 64
      printi r0
      texit
  )"));

  // --- nOS service node answering a core-to-core client.
  NosNode server(sys.core(4, 0, Layer::kVertical));
  const int svc =
      server.add_service("double", "    add r0, r0, r0\n    ret\n");
  server.start();
  Core& rpc_client = sys.core(4, 1, Layer::kVertical);
  const std::string client_src = NosNode::client_source(
      server.request_chanend(), rpc_client.node_id(),
      static_cast<std::uint32_t>(svc), 111);
  rpc_client.load(assemble(client_src));
  rpc_client.start();

  // --- Governed rate-limited worker.
  Core& governed = sys.core(0, 2, Layer::kVertical);
  governed.load(assemble(R"(
      gettime r9
  loop:
      ldc r2, 166
  w:
      add r6, r6, r7
      subi r2, r2, 1
      bt r2, w
      ldc r1, 1000
      add r9, r9, r1
      timewait r9
      bu loop
  )"));
  governed.start();
  DfsGovernor governor(sim, governed, {});
  governor.start();

  // --- A pipeline across the second slice column.
  AppBuilder app(sys);
  PipelineConfig pcfg;
  pcfg.stages = 6;
  pcfg.items = 10;
  pcfg.work_per_item = 4000;
  pcfg.bytes_per_item = 128;
  std::vector<Placement> places;
  for (int i = 0; i < pcfg.stages; ++i) {
    places.push_back(Placement{4 + i % 4, 2 + i / 4, Layer::kHorizontal});
  }
  const auto tasks = build_pipeline(app, pcfg, places);
  app.start();

  // --- Run everything together.
  sim.run_until(milliseconds(6.0));
  sys.settle_energy();

  // Booted program ran.
  EXPECT_TRUE(booted.finished());
  EXPECT_EQ(booted.console(), "64");
  // RPC answered.
  ASSERT_TRUE(rpc_client.finished());
  EXPECT_EQ(rpc_client.peek_word(assemble(client_src).symbol("result") * 4),
            222u);
  // Governor clocked the rate-limited core down.
  EXPECT_LT(governed.frequency(), 450.0);
  // Telemetry flowed.
  EXPECT_GT(telemetry_records, 50u);
  // Pipeline drained.
  for (int t : tasks) {
    EXPECT_TRUE(app.task_core(t).finished());
  }
  // Nothing trapped anywhere, no packets lost, energy is sane.
  for (int i = 0; i < sys.core_count(); ++i) {
    EXPECT_FALSE(sys.core_by_index(i).trapped())
        << sys.core_by_index(i).trap().message;
  }
  EXPECT_EQ(sys.network().total_packets_sunk(), 0u);
  const double avg_w = sys.ledger().grand_total() / to_seconds(sim.now());
  EXPECT_GT(avg_w, 8.0);   // 64 mostly-idle cores + support
  EXPECT_LT(avg_w, 25.0);
}

// ------------------------------------------- pipeline scaling properties

class PipelineScaling : public ::testing::TestWithParam<int> {};

TEST_P(PipelineScaling, ThroughputBoundedByStageTimeNotTotalWork) {
  const int stages = GetParam();
  Simulator sim;
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  AppBuilder app(sys);
  PipelineConfig pcfg;
  pcfg.stages = stages;
  pcfg.items = 24;
  pcfg.work_per_item = 6000;
  pcfg.bytes_per_item = 32;
  std::vector<Placement> places;
  for (int i = 0; i < stages; ++i) {
    places.push_back(linear_placement(sys.config(), i));
  }
  build_pipeline(app, pcfg, places);
  app.start();
  ASSERT_TRUE(app.run_to_completion(milliseconds(500.0)));

  // One stage's work per item at 125 MIPS.
  const double stage_s = 6000.0 / 125e6;
  const double total_s = to_seconds(app.completion_time());
  // Lower bound: the pipeline can't beat one stage processing all items.
  EXPECT_GT(total_s, pcfg.items * stage_s * 0.9);
  // Upper bound: far better than serialising all stages' work
  // (items x stages x stage time), showing real overlap.
  EXPECT_LT(total_s, 0.55 * pcfg.items * stages * stage_s);
}

INSTANTIATE_TEST_SUITE_P(Depths, PipelineScaling,
                         ::testing::Values(3, 5, 8, 12, 16));

}  // namespace
}  // namespace swallow
