// Tests for the static timing analyzer: exact cycle counts for statically
// resolvable code, agreement with simulation (the time-determinism
// property, §IV.A), and honest refusal for code whose timing the analysis
// cannot determine.
#include <gtest/gtest.h>

#include "test_seed.h"

#include "arch/assembler.h"
#include "arch/core.h"
#include "arch/timing.h"
#include "common/rng.h"
#include "common/strings.h"
#include "sim/simulator.h"

namespace swallow {
namespace {

TEST(Timing, StraightLineCode) {
  const Image img = assemble(R"(
      ldc  r0, 1
      add  r1, r0, r0
      mul  r2, r1, r1
      texit
  )");
  const TimingResult r = analyze_timing(img);
  EXPECT_TRUE(r.exact) << r.reason;
  EXPECT_EQ(r.instructions, 4u);
  // 3 reissue gaps between 4 instructions.
  EXPECT_EQ(r.thread_cycles, 12u);
  // 12 cycles at 500 MHz = 24 ns.
  EXPECT_EQ(r.duration(500.0), nanoseconds(24.0));
}

TEST(Timing, CountedLoop) {
  const Image img = assemble(R"(
      ldc  r0, 10
  loop:
      subi r0, r0, 1
      bt   r0, loop
      texit
  )");
  const TimingResult r = analyze_timing(img);
  EXPECT_TRUE(r.exact) << r.reason;
  // ldc + 10 x (subi, bt) + texit.
  EXPECT_EQ(r.instructions, 22u);
  EXPECT_EQ(r.thread_cycles, 21u * 4);
}

TEST(Timing, DivideStallsCounted) {
  const Image img = assemble(R"(
      ldc  r0, 8
      ldc  r1, 2
      divu r2, r0, r1
      add  r3, r2, r2
      texit
  )");
  const TimingResult r = analyze_timing(img);
  ASSERT_TRUE(r.exact) << r.reason;
  EXPECT_EQ(r.instructions, 5u);
  // gaps: ldc(4) + ldc(4) + divu(32) + add(4) = 44.
  EXPECT_EQ(r.thread_cycles, 44u);
}

TEST(Timing, CallAndReturn) {
  const Image img = assemble(R"(
      ldc  r0, 5
      bl   work
      bl   work
      texit
  work:
      add  r0, r0, r0
      ret
  )");
  const TimingResult r = analyze_timing(img);
  ASSERT_TRUE(r.exact) << r.reason;
  EXPECT_EQ(r.instructions, 8u);
}

TEST(Timing, RefusesDataDependentBranch) {
  const Image img = assemble(R"(
      ldc  r1, base
      ldw  r0, r1, 0     # r0 now unknown
      bt   r0, skip
      nop
  skip:
      texit
  base: .word 1
  )");
  const TimingResult r = analyze_timing(img);
  EXPECT_FALSE(r.exact);
  EXPECT_NE(r.reason.find("data-dependent"), std::string::npos);
}

TEST(Timing, RefusesCommunication) {
  const Image img = assemble(R"(
      getr r0, 2
      in   r1, r0
      texit
  )");
  const TimingResult r = analyze_timing(img);
  EXPECT_FALSE(r.exact);
}

TEST(Timing, RefusesUnboundedLoop) {
  const Image img = assemble("loop: bu loop");
  const TimingResult r = analyze_timing(img, 0, 10'000);
  EXPECT_FALSE(r.exact);
  EXPECT_NE(r.reason.find("limit"), std::string::npos);
}

/// The headline property: for statically timeable programs the analysis
/// matches simulation cycle-for-cycle.
class TimingVsSimulation : public ::testing::Test {
 protected:
  /// Run on a real core at 500 MHz and return elapsed core cycles.
  std::uint64_t run_and_measure(const Image& image) {
    Simulator sim;
    EnergyLedger ledger;
    Core::Config cfg;
    cfg.frequency_mhz = 500.0;
    Core core(sim, ledger, cfg);
    core.load(image);
    core.start();
    sim.run();  // drains exactly at the final retire
    EXPECT_TRUE(core.finished());
    return static_cast<std::uint64_t>(sim.now() / 2000);  // 2 ns cycles
  }
};

TEST_F(TimingVsSimulation, CountedLoopsMatchExactly) {
  const std::uint64_t seed = test::test_seed(31337);
  SWALLOW_SEED_TRACE(seed);
  Rng rng(seed);
  for (int iter = 0; iter < 25; ++iter) {
    const int outer = 1 + static_cast<int>(rng.next_below(20));
    const int inner = 1 + static_cast<int>(rng.next_below(30));
    const int body = static_cast<int>(rng.next_below(4));
    std::string src = strprintf("    ldc r0, %d\nouter:\n", outer);
    src += strprintf("    ldc r1, %d\ninner:\n", inner);
    for (int i = 0; i < body; ++i) src += "    add r2, r2, r1\n";
    src += "    subi r1, r1, 1\n    bt r1, inner\n";
    src += "    subi r0, r0, 1\n    bt r0, outer\n    texit\n";
    const Image img = assemble(src);

    const TimingResult predicted = analyze_timing(img);
    ASSERT_TRUE(predicted.exact) << predicted.reason;
    const std::uint64_t simulated = run_and_measure(img);
    EXPECT_EQ(predicted.thread_cycles, simulated)
        << "outer=" << outer << " inner=" << inner << " body=" << body;
  }
}

TEST_F(TimingVsSimulation, DivideHeavyCodeMatches) {
  const Image img = assemble(R"(
      ldc  r0, 50
      ldc  r1, 97
      ldc  r2, 3
  loop:
      divu r3, r1, r2
      subi r0, r0, 1
      bt   r0, loop
      texit
  )");
  const TimingResult predicted = analyze_timing(img);
  ASSERT_TRUE(predicted.exact) << predicted.reason;
  EXPECT_EQ(predicted.thread_cycles, run_and_measure(img));
}

}  // namespace
}  // namespace swallow
