// Observability layer (src/obs/, ISSUE 3): the trace/metrics/profile
// output of a run must be *byte-identical* for any SystemConfig::jobs
// value — including under a seeded fault plan and under ring-buffer
// overflow — and the produced Chrome trace must satisfy the checked-in
// schema contract (docs/observability.md).  Plus unit coverage of the
// ring buffer, histogram, profiler folding and the TraceBuffer migration.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/patterns.h"
#include "api/taskgen.h"
#include "arch/tracing.h"
#include "board/system.h"
#include "board/telemetry.h"
#include "common/error.h"
#include "common/json.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/ring.h"
#include "obs/schema.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace swallow {
namespace {

const NodeId kCableTxNode = lattice_node_id(3, 0, Layer::kHorizontal);

std::vector<Placement> row0_pipeline_places() {
  std::vector<Placement> places;
  for (int x = 1; x < 7; ++x) {
    places.push_back({x, 0, Layer::kHorizontal});
  }
  return places;
}

FaultPlan seeded_plan() {
  FaultPlan plan;
  plan.seed = 0x5EED;
  plan.corrupt_link(kCableTxNode, kDirEast, 3e-3);
  plan.link_outage(kCableTxNode, kDirEast, microseconds(400.0),
                   microseconds(30.0));
  plan.freeze_core(lattice_node_id(2, 0, Layer::kHorizontal),
                   microseconds(100.0), microseconds(150.0));
  return plan;
}

/// Everything the observability layer exports, byte for byte.
struct ObsOutput {
  std::string trace;    // Chrome trace-event JSON
  std::string metrics;  // metrics registry JSON
  std::string profile;  // flamegraph-collapsed profile
  std::uint64_t dropped = 0;
  std::size_t high_watermark = 0;  // max over tracks
  std::uint64_t instructions = 0;
};

/// The parallel_test machine (2x2 slices, cross-cable pipeline, telemetry
/// through a bridge) with a full observability session attached.
ObsOutput run_traced_machine(int jobs, const FaultPlan* plan,
                             std::size_t track_capacity = 16384) {
  TraceConfig tcfg;
  tcfg.tracing = tcfg.metrics = tcfg.profile = true;
  tcfg.track_capacity = track_capacity;
  TraceSession session(tcfg);  // outlives the system: models hold Track*

  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = 2;
  cfg.slices_y = 2;
  cfg.ethernet_bridges = 1;
  cfg.reliable_links = true;
  cfg.jobs = jobs;
  SwallowSystem sys(sim, cfg);
  sys.attach_observability(session);
  sys.enable_loss_integration();
  sys.start_sampling(100'000.0);

  TelemetryStreamer streamer(sys.sim_for_slice(0, 0), sys.slice(0, 0),
                             sys.bridge(0));
  streamer.enable_fault_stream();
  streamer.start();

  FaultInjector injector(sys, plan != nullptr ? *plan : FaultPlan{});
  injector.arm();

  AppBuilder app(sys);
  PipelineConfig pcfg;
  pcfg.stages = 6;
  pcfg.items = 16;
  pcfg.work_per_item = 500;
  pcfg.bytes_per_item = 64;
  build_pipeline(app, pcfg, row0_pipeline_places());
  app.start();

  sys.run_until(milliseconds(2.0));
  sys.finish_observability();

  ObsOutput out;
  out.trace = session.chrome_json();
  out.metrics = session.metrics().dump_json();
  out.profile = session.profiler().collapsed();
  out.dropped = session.dropped_total();
  for (std::size_t i = 0; i < session.track_count(); ++i) {
    out.high_watermark =
        std::max(out.high_watermark, session.track(i).high_watermark());
  }
  for (int i = 0; i < sys.core_count(); ++i) {
    out.instructions += sys.core_by_index(i).instructions_retired();
  }
  return out;
}

// --------------------------------------------------------- byte identity

TEST(ObsDeterminism, ByteIdenticalAcrossEnginesFaultFree) {
  const ObsOutput seq = run_traced_machine(0, nullptr);
  ASSERT_GT(seq.instructions, 10'000u);
  // Every pillar produced real output.
  ASSERT_GT(seq.trace.size(), 10'000u);
  EXPECT_NE(seq.trace.find("\"cat\": \"thread\""), std::string::npos);
  EXPECT_NE(seq.trace.find("\"cat\": \"route\""), std::string::npos);
  EXPECT_NE(seq.trace.find("\"cat\": \"link\""), std::string::npos);
  EXPECT_NE(seq.trace.find("\"cat\": \"energy\""), std::string::npos);
  EXPECT_NE(seq.metrics.find("token.e2e_latency_ns"), std::string::npos);
  EXPECT_NE(seq.profile.find("core_0x"), std::string::npos);

  for (int jobs : {1, 2, 4}) {
    SCOPED_TRACE(jobs);
    const ObsOutput par = run_traced_machine(jobs, nullptr);
    EXPECT_EQ(seq.trace, par.trace);
    EXPECT_EQ(seq.metrics, par.metrics);
    EXPECT_EQ(seq.profile, par.profile);
    EXPECT_EQ(seq.dropped, par.dropped);
  }
}

TEST(ObsDeterminism, ByteIdenticalUnderFaultPlan) {
  const FaultPlan plan = seeded_plan();
  const ObsOutput seq = run_traced_machine(0, &plan);
  // The plan really fired: fault instants made it into the trace.
  EXPECT_NE(seq.trace.find("\"cat\": \"fault\""), std::string::npos);
  EXPECT_NE(seq.trace.find("core-freeze"), std::string::npos);

  for (int jobs : {2, 4}) {
    SCOPED_TRACE(jobs);
    const ObsOutput par = run_traced_machine(jobs, &plan);
    EXPECT_EQ(seq.trace, par.trace);
    EXPECT_EQ(seq.metrics, par.metrics);
    EXPECT_EQ(seq.profile, par.profile);
  }
}

TEST(ObsDeterminism, BoundedMemoryAndIdenticalUnderRingOverflow) {
  // A tiny per-track ring forces drop-newest overflow; the dropped set is
  // a pure function of each producer's own event sequence, so the
  // (truncated) output must still be byte-identical across engines.
  const std::size_t cap = 64;
  const ObsOutput seq = run_traced_machine(0, nullptr, cap);
  EXPECT_GT(seq.dropped, 0u);
  EXPECT_LE(seq.high_watermark, cap);
  EXPECT_NE(seq.trace.find("\"dropped_events\""), std::string::npos);

  const ObsOutput par = run_traced_machine(4, nullptr, cap);
  EXPECT_EQ(seq.trace, par.trace);
  EXPECT_EQ(seq.dropped, par.dropped);
  EXPECT_EQ(seq.high_watermark, par.high_watermark);
}

// --------------------------------------------------------------- schema

TEST(ObsSchema, ProducedTraceValidates) {
  const FaultPlan plan = seeded_plan();
  const ObsOutput out = run_traced_machine(0, &plan);
  const Json doc = Json::parse(out.trace);
  EXPECT_EQ(check_chrome_trace(doc), "");
  // And the dump carries the advertised bookkeeping.
  const Json& other = doc.at("otherData");
  EXPECT_TRUE(other.has("dropped_events"));
  EXPECT_GT(other.at("events").as_number(), 0.0);
}

TEST(ObsSchema, RejectsUnbalancedSpans) {
  const std::string bad =
      "{\"traceEvents\": ["
      "{\"name\": \"run\", \"ph\": \"B\", \"cat\": \"thread\", \"ts\": 1, "
      "\"pid\": 1, \"tid\": 0}"
      "], \"otherData\": {\"dropped_events\": 0}}";
  EXPECT_NE(check_chrome_trace(Json::parse(bad)), "");
}

TEST(ObsSchema, RejectsDecreasingTimestamps) {
  const std::string bad =
      "{\"traceEvents\": ["
      "{\"name\": \"a\", \"ph\": \"i\", \"s\": \"t\", \"ts\": 5, \"pid\": 1, "
      "\"tid\": 0},"
      "{\"name\": \"b\", \"ph\": \"i\", \"s\": \"t\", \"ts\": 4, \"pid\": 1, "
      "\"tid\": 0}"
      "], \"otherData\": {\"dropped_events\": 0}}";
  EXPECT_NE(check_chrome_trace(Json::parse(bad)), "");
}

// ------------------------------------------------------------ ring unit

TEST(ObsRing, DropNewestCountsAndBounds) {
  RingBuffer<int> ring(4);
  for (int i = 0; i < 10; ++i) ring.push(int{i});
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  EXPECT_EQ(ring.high_watermark(), 4u);
  // Drop-newest: the *oldest* four survive.
  EXPECT_EQ(ring.front(), 0);
  EXPECT_EQ(ring.at(3), 3);
  EXPECT_EQ(ring.pop_front(), 0);
  EXPECT_EQ(ring.pop_front(), 1);
  ring.push(42);
  EXPECT_EQ(ring.size(), 3u);
}

TEST(ObsRing, TrackSequenceNumbersAdvanceThroughDrops) {
  TraceConfig cfg;
  cfg.tracing = true;
  cfg.track_capacity = 2;
  TraceSession session(cfg);
  Track* t = session.make_track(7, "t");
  for (int i = 0; i < 5; ++i) {
    t->instant(TimePs{100} * (i + 1), TraceCat::kFault, 0, kTidNode);
  }
  EXPECT_EQ(t->dropped(), 3u);
  session.finish(TimePs{1000});
  // Surviving events are the two oldest; seq still counts all emissions.
  ASSERT_EQ(session.events().size(), 2u);
  EXPECT_EQ(session.events()[0].seq, 0u);
  EXPECT_EQ(session.events()[1].seq, 1u);
  EXPECT_EQ(session.dropped_total(), 3u);
}

// ------------------------------------------------------- histogram unit

TEST(ObsMetrics, LogHistogramBucketsAndPercentiles) {
  EXPECT_EQ(LogHistogram::bucket_of(0), 0);
  EXPECT_EQ(LogHistogram::bucket_of(1), 1);
  EXPECT_EQ(LogHistogram::bucket_of(2), 2);
  EXPECT_EQ(LogHistogram::bucket_of(3), 2);
  EXPECT_EQ(LogHistogram::bucket_of(4), 3);
  EXPECT_EQ(LogHistogram::bucket_lo(3), 4u);

  LogHistogram h;
  for (std::uint64_t v : {1u, 1u, 1u, 1u, 1u, 1u, 1u, 1u, 1u, 1000u}) {
    h.add(v);
  }
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.percentile(0.50), 1u);
  EXPECT_EQ(h.percentile(0.99), 1u);   // rank 8 of 10 is still a 1
  EXPECT_EQ(h.percentile(1.0), 1000u);

  LogHistogram other;
  other.add(1000);
  h.merge(other);
  EXPECT_EQ(h.count(), 11u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(ObsMetrics, RegistryAggregatesAcrossOwners) {
  MetricsRegistry reg;
  reg.counter("tokens", 1)->add(3);
  reg.counter("tokens", 2)->add(4);
  reg.gauge("ipc", 1)->set(0.5);
  reg.histogram("lat", 1)->add(8);
  const std::string json = reg.dump_json();
  EXPECT_NE(json.find("\"tokens\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"0x0001\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  // Same (name, owner) returns the same instrument.
  EXPECT_EQ(reg.counter("tokens", 1)->value(), 3u);
}

// -------------------------------------------------------- profiler unit

TEST(ObsProfiler, FoldsSymbolizedStacks) {
  Profiler prof;
  prof.note_symbols(0x11, {{0, "main"}, {10, "worker"}});
  prof.sample(0x11, 0, 3, true);    // main+3
  prof.sample(0x11, 0, 3, true);
  prof.sample(0x11, 0, 12, false);  // worker, waiting
  prof.sample(0x11, 1, 99, true);   // past the last symbol -> worker
  const std::string folded = prof.collapsed();
  EXPECT_NE(folded.find("core_0x0011;t0;main 2"), std::string::npos);
  EXPECT_NE(folded.find("core_0x0011;t0;worker;[wait] 1"), std::string::npos);
  EXPECT_NE(folded.find("core_0x0011;t1;worker 1"), std::string::npos);
}

TEST(ObsProfiler, UnknownNodeFallsBackToHexPc) {
  Profiler prof;
  prof.sample(0x22, 0, 0x1f, true);
  EXPECT_NE(prof.collapsed().find("0x001f 1"), std::string::npos);
}

// ------------------------------------------- TraceBuffer (satellite a)

TEST(ObsTraceBuffer, CountsDroppedLinesOnOverflow) {
  TraceBuffer buf;
  buf.set_max_lines(3);
  auto sink = buf.sink();
  for (std::uint32_t i = 0; i < 8; ++i) {
    InstrTraceRecord rec;
    rec.pc = i;
    sink(rec);
  }
  EXPECT_EQ(buf.count(), 8u);
  EXPECT_EQ(buf.lines().size(), 3u);
  EXPECT_EQ(buf.dropped(), 5u);
}

// ----------------------------------------------------------- API misc

TEST(ObsSession, DoubleAttachIsRejected) {
  TraceConfig tcfg;
  tcfg.tracing = true;
  TraceSession session(tcfg);
  Simulator sim;
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  sys.attach_observability(session);
  EXPECT_THROW(sys.attach_observability(session), Error);
}

TEST(ObsSession, InactiveSessionIsRejected) {
  TraceSession session;  // no pillar enabled
  Simulator sim;
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  EXPECT_THROW(sys.attach_observability(session), Error);
}

}  // namespace
}  // namespace swallow
