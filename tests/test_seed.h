// Seed discipline for randomized tests (docs/testing.md).
//
// Every randomized suite draws its seed through test_seed() so a CI
// failure can be replayed exactly:
//
//   const std::uint64_t seed = swallow::test::test_seed(0xBEEF);
//   SWALLOW_SEED_TRACE(seed);
//   Rng rng(seed);
//
// SWALLOW_SEED_TRACE attaches the seed and a copy-pasteable re-run command
// to every assertion failure in the enclosing scope, and the
// SWALLOW_TEST_SEED environment variable overrides the default seed so the
// failing case can be replayed (or the corpus widened) without a rebuild.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

namespace swallow {
namespace test {

/// The suite's seed: `fallback`, unless SWALLOW_TEST_SEED is set in the
/// environment (decimal or 0x-prefixed hex).
inline std::uint64_t test_seed(std::uint64_t fallback) {
  if (const char* env = std::getenv("SWALLOW_TEST_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return fallback;
}

/// One-line repro command for the currently running gtest case.
inline std::string seed_repro(std::uint64_t seed) {
  std::string cmd = "SWALLOW_TEST_SEED=" + std::to_string(seed);
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  if (info != nullptr) {
    cmd += " <this test binary> --gtest_filter=";
    cmd += info->test_suite_name();
    cmd += ".";
    cmd += info->name();
  }
  return cmd;
}

}  // namespace test
}  // namespace swallow

/// Attach "seed N; re-run: SWALLOW_TEST_SEED=N ... --gtest_filter=..." to
/// every assertion failure in the enclosing scope.
#define SWALLOW_SEED_TRACE(seed)                                        \
  SCOPED_TRACE(::testing::Message()                                     \
               << "seed " << (seed)                                     \
               << "; re-run: " << ::swallow::test::seed_repro(seed))
