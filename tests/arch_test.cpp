// Tests for the processor model: ISA encode/decode, assembler, execution
// semantics, Eq. (2) thread scheduling, traps, resources, channels (over
// the loopback fabric) and core-level energy accounting.
#include <gtest/gtest.h>

#include "test_seed.h"

#include <string>

#include "arch/assembler.h"
#include "arch/core.h"
#include "arch/isa.h"
#include "arch/loopback.h"
#include "common/rng.h"
#include "common/strings.h"
#include "energy/ledger.h"
#include "sim/simulator.h"

namespace swallow {
namespace {

// ---------------------------------------------------------------- ISA

TEST(Isa, EncodeDecodeAllFormats) {
  const Instruction cases[] = {
      {Opcode::kNop, 0, 0, 0, 0},
      {Opcode::kAdd, 1, 2, 3, 0},
      {Opcode::kNot, 4, 5, 0, 0},
      {Opcode::kAddi, 6, 7, 0, -42},
      {Opcode::kLdc, 8, 0, 0, 65535},
      {Opcode::kBu, 0, 0, 0, -100},
      {Opcode::kGettime, 11, 0, 0, 0},
  };
  for (const Instruction& ins : cases) {
    EXPECT_EQ(decode(encode(ins)), ins) << disassemble(ins);
  }
}

TEST(Isa, RandomisedEncodeDecodeRoundTrip) {
  const std::uint64_t seed = test::test_seed(2024);
  SWALLOW_SEED_TRACE(seed);
  Rng rng(seed);
  for (int iter = 0; iter < 5000; ++iter) {
    Instruction ins;
    ins.op = static_cast<Opcode>(
        rng.next_below(static_cast<std::uint64_t>(Opcode::kOpcodeCount)));
    const Format fmt = opcode_info(ins.op).format;
    auto reg = [&] { return static_cast<std::uint8_t>(rng.next_below(14)); };
    switch (fmt) {
      case Format::kR0: break;
      case Format::kR1: ins.ra = reg(); break;
      case Format::kR2: ins.ra = reg(); ins.rb = reg(); break;
      case Format::kR3: ins.ra = reg(); ins.rb = reg(); ins.rc = reg(); break;
      case Format::kR1I: ins.ra = reg(); break;
      case Format::kR2I: ins.ra = reg(); ins.rb = reg(); break;
      case Format::kI: break;
    }
    if (fmt == Format::kR1I || fmt == Format::kR2I || fmt == Format::kI) {
      if (ins.op == Opcode::kLdc || ins.op == Opcode::kLdch) {
        ins.imm = static_cast<std::int32_t>(rng.next_below(65536));
      } else {
        ins.imm = static_cast<std::int32_t>(rng.next_below(65536)) - 32768;
      }
    }
    EXPECT_EQ(decode(encode(ins)), ins) << disassemble(ins);
  }
}

TEST(Isa, DisassembleReassembleRoundTrip) {
  const std::uint64_t seed = test::test_seed(7);
  SWALLOW_SEED_TRACE(seed);
  Rng rng(seed);
  for (int iter = 0; iter < 1000; ++iter) {
    Instruction ins;
    ins.op = static_cast<Opcode>(
        rng.next_below(static_cast<std::uint64_t>(Opcode::kOpcodeCount)));
    const Format fmt = opcode_info(ins.op).format;
    auto reg = [&] { return static_cast<std::uint8_t>(rng.next_below(14)); };
    switch (fmt) {
      case Format::kR0: break;
      case Format::kR1: ins.ra = reg(); break;
      case Format::kR2: ins.ra = reg(); ins.rb = reg(); break;
      case Format::kR3: ins.ra = reg(); ins.rb = reg(); ins.rc = reg(); break;
      case Format::kR1I: ins.ra = reg(); ins.imm = 17; break;
      case Format::kR2I: ins.ra = reg(); ins.rb = reg(); ins.imm = -5; break;
      case Format::kI: ins.imm = 9; break;
    }
    const Image img = assemble(disassemble(ins));
    ASSERT_EQ(img.words.size(), 1u);
    EXPECT_EQ(img.words[0], encode(ins)) << disassemble(ins);
  }
}

TEST(Isa, UnknownOpcodeDecodesToTrapMarker) {
  const Instruction ins = decode(0xFF000000u);
  EXPECT_EQ(ins.op, Opcode::kNop);
  EXPECT_EQ(ins.rc, 0xF);
  EXPECT_EQ(ins.imm, 0xFF);
}

TEST(Isa, RegisterNames) {
  EXPECT_EQ(register_name(0), "r0");
  EXPECT_EQ(register_name(12), "sp");
  EXPECT_EQ(register_name(13), "lr");
  EXPECT_EQ(register_from_name("r11"), 11);
  EXPECT_EQ(register_from_name("sp"), 12);
  EXPECT_FALSE(register_from_name("r14").has_value());
  EXPECT_FALSE(register_from_name("bogus").has_value());
}

// ------------------------------------------------------------- assembler

TEST(Assembler, LabelsAndBranchOffsets) {
  const Image img = assemble(R"(
      ldc   r0, 3
  loop:
      subi  r0, r0, 1
      bt    r0, loop
      texit
  )");
  ASSERT_EQ(img.words.size(), 4u);
  const Instruction bt = decode(img.words[2]);
  EXPECT_EQ(bt.op, Opcode::kBt);
  EXPECT_EQ(bt.imm, -2);  // back to word 1 from pc 2: 2 + 1 + (-2) = 1
  EXPECT_EQ(img.symbol("loop"), 1u);
}

TEST(Assembler, DirectivesOrgWordSpace) {
  const Image img = assemble(R"(
      nop
      .org 4
  data: .word 0xdeadbeef, 7
      .space 2
  tail: .word data
  )");
  ASSERT_EQ(img.words.size(), 9u);
  EXPECT_EQ(img.words[4], 0xdeadbeefu);
  EXPECT_EQ(img.words[5], 7u);
  EXPECT_EQ(img.words[6], 0u);
  EXPECT_EQ(img.words[8], 16u);  // byte address of `data`
}

TEST(Assembler, LdcOfLabelGivesByteAddress) {
  const Image img = assemble(R"(
      ldc r1, buf
      texit
  buf: .word 0
  )");
  const Instruction ldc = decode(img.words[0]);
  EXPECT_EQ(ldc.imm, 8);  // word 2 -> byte 8
}

TEST(Assembler, Errors) {
  EXPECT_THROW(assemble("frobnicate r0"), Error);
  EXPECT_THROW(assemble("add r0, r1"), Error);          // missing operand
  EXPECT_THROW(assemble("bt r0, nowhere"), Error);      // undefined symbol
  EXPECT_THROW(assemble("ldc r0, 100000"), Error);      // imm range
  EXPECT_THROW(assemble("x: nop\nx: nop"), Error);      // duplicate label
  EXPECT_THROW(assemble(".org 4\n.org 2"), Error);      // backwards org
  EXPECT_THROW(assemble(".bogus 1"), Error);            // unknown directive
  EXPECT_THROW(assemble("add r0, r1, 5"), Error);       // imm where reg
}

TEST(Assembler, CommentsAndCase) {
  const Image img = assemble(R"(
      NOP            # hash comment
      Add r0, r1, r2 // slash comment
      nop            ; semicolon comment
  )");
  EXPECT_EQ(img.words.size(), 3u);
  EXPECT_EQ(decode(img.words[1]).op, Opcode::kAdd);
}

// ------------------------------------------------------------- execution

/// Harness: one core, optional loopback fabric, run until idle or timeout.
class CoreTest : public ::testing::Test {
 protected:
  Simulator sim;
  EnergyLedger ledger;

  std::unique_ptr<Core> make_core(NodeId node = 0, MegaHertz f = 500.0) {
    Core::Config cfg;
    cfg.node_id = node;
    cfg.frequency_mhz = f;
    return std::make_unique<Core>(sim, ledger, cfg);
  }

  /// Assemble, load, start and run to completion (or 10 ms timeout).
  void run(Core& core, const std::string& src,
           TimePs timeout = milliseconds(10.0)) {
    core.load(assemble(src));
    core.start();
    sim.run_until(timeout);
  }
};

TEST_F(CoreTest, ArithmeticAndMemory) {
  auto core = make_core();
  run(*core, R"(
      ldc   r0, 21
      add   r1, r0, r0       # 42
      ldc   r2, 5
      mul   r3, r1, r2       # 210
      divu  r4, r3, r2       # 42
      remu  r5, r3, r0       # 210 % 21 = 0
      ldc   r6, result
      stw   r1, r6, 0
      stw   r4, r6, 1
      stw   r5, r6, 2
      texit
  result: .space 3
  )");
  EXPECT_TRUE(core->finished());
  const std::uint32_t base = assemble("nop").words.empty() ? 0 : 0;  // silence
  (void)base;
  const auto img = assemble(R"(
      ldc   r0, 21
      add   r1, r0, r0
      ldc   r2, 5
      mul   r3, r1, r2
      divu  r4, r3, r2
      remu  r5, r3, r0
      ldc   r6, result
      stw   r1, r6, 0
      stw   r4, r6, 1
      stw   r5, r6, 2
      texit
  result: .space 3
  )");
  const std::uint32_t result = img.symbol("result") * 4;
  EXPECT_EQ(core->peek_word(result), 42u);
  EXPECT_EQ(core->peek_word(result + 4), 42u);
  EXPECT_EQ(core->peek_word(result + 8), 0u);
}

TEST_F(CoreTest, LogicShiftsAndComparisons) {
  auto core = make_core();
  const std::string src = R"(
      ldc   r0, 0xf0
      ldc   r1, 0x0f
      or    r2, r0, r1       # 0xff
      and   r3, r0, r1       # 0
      xor   r4, r0, r1       # 0xff
      not   r5, r3           # 0xffffffff
      neg   r6, r5           # 1
      ldc   r7, 8
      mkmsk r8, r7           # 0xff
      shli  r9, r6, 31       # 0x80000000
      ashr  r10, r9, r7      # sign-propagating
      ldc   r11, out
      stw   r2, r11, 0
      stw   r5, r11, 1
      stw   r6, r11, 2
      stw   r8, r11, 3
      stw   r10, r11, 4
      lss   r0, r9, r6       # INT_MIN < 1 -> 1
      stw   r0, r11, 5
      lsu   r0, r9, r6       # 0x80000000 <u 1 -> 0
      stw   r0, r11, 6
      texit
  out: .space 7
  )";
  run(*core, src);
  ASSERT_TRUE(core->finished());
  const std::uint32_t base = assemble(src).symbol("out") * 4;
  EXPECT_EQ(core->peek_word(base + 0), 0xFFu);
  EXPECT_EQ(core->peek_word(base + 4), 0xFFFFFFFFu);
  EXPECT_EQ(core->peek_word(base + 8), 1u);
  EXPECT_EQ(core->peek_word(base + 12), 0xFFu);
  EXPECT_EQ(core->peek_word(base + 16), 0xFF800000u);
  EXPECT_EQ(core->peek_word(base + 20), 1u);
  EXPECT_EQ(core->peek_word(base + 24), 0u);
}

TEST_F(CoreTest, LoopAndBranches) {
  auto core = make_core();
  const std::string src = R"(
      ldc   r0, 10       # n
      ldc   r1, 0        # sum
  loop:
      add   r1, r1, r0
      subi  r0, r0, 1
      bt    r0, loop
      ldc   r2, out
      stw   r1, r2, 0
      texit
  out: .word 0
  )";
  run(*core, src);
  ASSERT_TRUE(core->finished());
  EXPECT_EQ(core->peek_word(assemble(src).symbol("out") * 4), 55u);
}

TEST_F(CoreTest, CallAndReturn) {
  auto core = make_core();
  const std::string src = R"(
      ldc   r0, 5
      bl    double_it
      bl    double_it
      ldc   r2, out
      stw   r0, r2, 0
      texit
  double_it:
      add   r0, r0, r0
      ret
  out: .word 0
  )";
  run(*core, src);
  ASSERT_TRUE(core->finished());
  EXPECT_EQ(core->peek_word(assemble(src).symbol("out") * 4), 20u);
}

TEST_F(CoreTest, StackOperations) {
  auto core = make_core();
  const std::string src = R"(
      extsp 4
      ldc   r0, 77
      stwsp r0, 0
      ldc   r1, 88
      stwsp r1, 3
      ldwsp r2, 0
      ldwsp r3, 3
      add   r4, r2, r3
      ldawsp r5, 0
      ldc   r6, out
      stw   r4, r6, 0
      stw   r5, r6, 1
      texit
  out: .space 2
  )";
  run(*core, src);
  ASSERT_TRUE(core->finished());
  const std::uint32_t base = assemble(src).symbol("out") * 4;
  EXPECT_EQ(core->peek_word(base), 165u);
  EXPECT_EQ(core->peek_word(base + 4), 65536u - 16u);  // sp after extsp 4
}

TEST_F(CoreTest, ByteLoadsAndStores) {
  auto core = make_core();
  const std::string src = R"(
      ldc   r0, buf
      ldc   r1, 0xab
      stb   r1, r0, 1
      ldb   r2, r0, 1
      ldw   r3, r0, 0
      ldc   r4, out
      stw   r2, r4, 0
      stw   r3, r4, 1
      texit
  buf: .word 0
  out: .space 2
  )";
  run(*core, src);
  ASSERT_TRUE(core->finished());
  const std::uint32_t base = assemble(src).symbol("out") * 4;
  EXPECT_EQ(core->peek_word(base), 0xABu);
  EXPECT_EQ(core->peek_word(base + 4), 0xAB00u);  // little-endian byte 1
}

TEST_F(CoreTest, ConstantsVia32Bit) {
  auto core = make_core();
  const std::string src = R"(
      ldc   r0, 0x1234
      ldch  r0, 0x5678   # r0 = 0x12345678
      ldc   r1, out
      stw   r0, r1, 0
      texit
  out: .word 0
  )";
  run(*core, src);
  EXPECT_EQ(core->peek_word(assemble(src).symbol("out") * 4), 0x12345678u);
}

// --------------------------------------------------------------- traps

TEST_F(CoreTest, TrapOnBadOpcode) {
  auto core = make_core();
  run(*core, ".word 0xff000000");
  EXPECT_TRUE(core->trapped());
  EXPECT_EQ(core->trap().kind, TrapKind::kBadOpcode);
  EXPECT_FALSE(core->finished());
}

TEST_F(CoreTest, TrapOnUnalignedAccess) {
  auto core = make_core();
  run(*core, R"(
      ldc  r0, 2
      ldw  r1, r0, 0
      texit
  )");
  EXPECT_TRUE(core->trapped());
  EXPECT_EQ(core->trap().kind, TrapKind::kMemoryAlignment);
}

TEST_F(CoreTest, TrapOnOutOfBoundsAccess) {
  auto core = make_core();
  run(*core, R"(
      ldc  r0, 0xffff
      ldch r0, 0xfffc    # way beyond 64 KiB
      ldw  r1, r0, 0
      texit
  )");
  EXPECT_TRUE(core->trapped());
  EXPECT_EQ(core->trap().kind, TrapKind::kMemoryBounds);
}

TEST_F(CoreTest, TrapOnDivideByZero) {
  auto core = make_core();
  run(*core, R"(
      ldc  r0, 1
      ldc  r1, 0
      divu r2, r0, r1
      texit
  )");
  EXPECT_TRUE(core->trapped());
  EXPECT_EQ(core->trap().kind, TrapKind::kBadOperand);
}

TEST_F(CoreTest, TrapOnUnallocatedChanend) {
  auto core = make_core();
  run(*core, R"(
      ldc  r0, 2     # a chanend-typed id that was never allocated
      ldc  r1, 7
      out  r0, r1
      texit
  )");
  EXPECT_TRUE(core->trapped());
  EXPECT_EQ(core->trap().kind, TrapKind::kBadResource);
}

TEST_F(CoreTest, TrapRecordsThreadAndPc) {
  auto core = make_core();
  run(*core, "nop\nnop\n.word 0xff000000");
  ASSERT_TRUE(core->trapped());
  EXPECT_EQ(core->trap().thread, 0);
  EXPECT_EQ(core->trap().pc, 2u);
}

// ------------------------------------------------------------ resources

TEST_F(CoreTest, ChanendExhaustionReturnsZero) {
  auto core = make_core();
  const std::string src = R"(
      ldc   r2, 0        # successful allocations
  loop:
      getr  r1, 2
      bf    r1, done
      addi  r2, r2, 1
      bu    loop
  done:
      ldc   r3, out
      stw   r2, r3, 0
      texit
  out: .word 0
  )";
  run(*core, src);
  ASSERT_TRUE(core->finished());
  EXPECT_EQ(core->peek_word(assemble(src).symbol("out") * 4), 32u);
}

TEST_F(CoreTest, FreerRecyclesChanend) {
  auto core = make_core();
  const std::string src = R"(
      getr  r0, 2
      freer r0
      getr  r1, 2
      eq    r2, r0, r1    # same id reallocated
      ldc   r3, out
      stw   r2, r3, 0
      texit
  out: .word 0
  )";
  run(*core, src);
  ASSERT_TRUE(core->finished());
  EXPECT_EQ(core->peek_word(assemble(src).symbol("out") * 4), 1u);
}

TEST_F(CoreTest, GettimeAdvancesAtReferenceRate) {
  auto core = make_core();
  const std::string src = R"(
      gettime r0
      ldc     r1, 100
      add     r1, r0, r1
      timewait r1          # sleep 100 ticks = 1 us
      gettime r2
      sub     r3, r2, r0
      ldc     r4, out
      stw     r3, r4, 0
      texit
  out: .word 0
  )";
  run(*core, src);
  ASSERT_TRUE(core->finished());
  const std::uint32_t delta = core->peek_word(assemble(src).symbol("out") * 4);
  EXPECT_GE(delta, 100u);
  EXPECT_LE(delta, 102u);
}

TEST_F(CoreTest, TimewaitInThePastDoesNotBlock) {
  auto core = make_core();
  run(*core, R"(
      gettime r0
      timewait r0      # already reached
      texit
  )");
  EXPECT_TRUE(core->finished());
}

// ------------------------------------------------- threads & Eq. (2)

TEST_F(CoreTest, ForkJoinComputesInParallel) {
  auto core = make_core();
  const std::string src = R"(
      getr  r4, 3          # sync
      getst r5, r4         # slave thread
      bf    r5, fail
      tinitpc r5, slave
      ldc   r0, 0xfff0
      ldch  r0, 0          # slave stack below ours
      tinitsp r5, r0
      ldc   r0, 1234
      tsetr r5, r0, 0      # slave r0 = 1234
      msync r4             # start slave
      ldc   r6, out
      ldc   r7, 1111
      stw   r7, r6, 0      # master writes slot 0
      tjoin r4
      texit
  fail:
      texit
  slave:
      ldc   r6, out
      stw   r0, r6, 1      # slave writes its argument to slot 1
      texit
  out: .space 2
  )";
  run(*core, src);
  ASSERT_FALSE(core->trapped()) << core->trap().message;
  ASSERT_TRUE(core->finished());
  const std::uint32_t base = assemble(src).symbol("out") * 4;
  EXPECT_EQ(core->peek_word(base), 1111u);
  EXPECT_EQ(core->peek_word(base + 4), 1234u);
}

TEST_F(CoreTest, MsyncBarrierSynchronises) {
  auto core = make_core();
  const std::string src = R"(
      getr  r4, 3
      getst r5, r4
      tinitpc r5, slave
      ldc   r0, 0xfff0
      tinitsp r5, r0
      msync r4             # start slave
      # phase 1: wait for slave to write flag, via barrier
      msync r4             # barrier: waits for slave ssync
      ldc   r6, out
      ldw   r7, r6, 0      # must observe slave's write
      stw   r7, r6, 1
      tjoin r4
      texit
  slave:
      ldc   r6, out
      ldc   r7, 99
      stw   r7, r6, 0
      ssync                # arrive at barrier
      texit
  out: .space 2
  )";
  run(*core, src);
  ASSERT_FALSE(core->trapped()) << core->trap().message;
  ASSERT_TRUE(core->finished());
  const std::uint32_t base = assemble(src).symbol("out") * 4;
  EXPECT_EQ(core->peek_word(base + 4), 99u);
}

TEST_F(CoreTest, LockProtectsSharedCounter) {
  auto core = make_core();
  const std::string src = R"(
      getr  r4, 3          # sync
      getr  r8, 5          # lock
      getst r5, r4
      tinitpc r5, worker
      ldc   r0, 0xfff0
      tinitsp r5, r0
      tsetr r5, r8, 8      # pass lock id in slave r8
      msync r4
      bl    worker_body    # master does the same work
      tjoin r4
      texit
  worker:
      bl    worker_body
      texit
  worker_body:
      ldc   r0, 200        # iterations
  wloop:
      in    r1, r8         # acquire
      ldc   r2, counter
      ldw   r3, r2, 0
      addi  r3, r3, 1
      stw   r3, r2, 0
      out   r8, r1         # release
      subi  r0, r0, 1
      bt    r0, wloop
      ret
  counter: .word 0
  )";
  run(*core, src, milliseconds(50.0));
  ASSERT_FALSE(core->trapped()) << core->trap().message;
  ASSERT_TRUE(core->finished());
  EXPECT_EQ(core->peek_word(assemble(src).symbol("counter") * 4), 400u);
}

TEST_F(CoreTest, SingleThreadIssueRateIsQuarterFrequency) {
  // Eq. (2): one thread issues every four cycles -> f/4 instructions/s.
  auto core = make_core(0, 500.0);
  core->load(assemble("loop: addi r0, r0, 1\n bu loop"));
  core->start();
  sim.run_until(microseconds(100.0));
  const double ips =
      static_cast<double>(core->instructions_retired()) / 100e-6;
  EXPECT_NEAR(ips, 500e6 / 4.0, 0.02 * 125e6);
}

TEST_F(CoreTest, FourThreadsSaturateIssueRate) {
  // Eq. (2): with Nt = 4 the core retires one instruction per cycle.
  auto core = make_core(0, 500.0);
  const std::string src = R"(
      getr  r4, 3
      getst r5, r4
      tinitpc r5, spin
      getst r5, r4
      tinitpc r5, spin
      getst r5, r4
      tinitpc r5, spin
      msync r4
  spin:
      addi  r0, r0, 1
      bu    spin
  )";
  core->load(assemble(src));
  core->start();
  sim.run_until(microseconds(100.0));
  const double ips =
      static_cast<double>(core->instructions_retired()) / 100e-6;
  EXPECT_NEAR(ips, 500e6, 0.02 * 500e6);
  EXPECT_EQ(core->runnable_threads(), 4);
}

TEST_F(CoreTest, EightThreadsShareIssueSlotsFairly) {
  // Eq. (2): IPSt = f / max(4, Nt) = f/8 per thread with eight threads.
  auto core = make_core(0, 500.0);
  std::string src = R"(
      getr  r4, 3
)";
  for (int i = 0; i < 7; ++i) {
    src += "      getst r5, r4\n      tinitpc r5, spin\n";
  }
  src += R"(
      msync r4
  spin:
      addi  r0, r0, 1
      bu    spin
  )";
  core->load(assemble(src));
  core->start();
  sim.run_until(microseconds(100.0));
  // Aggregate still saturates at f.
  const double ips =
      static_cast<double>(core->instructions_retired()) / 100e-6;
  EXPECT_NEAR(ips, 500e6, 0.02 * 500e6);
  // And each spinner gets ~f/8 (threads 1..7; thread 0 spins too).
  for (int tid = 0; tid < 8; ++tid) {
    const double tips =
        static_cast<double>(core->thread_instructions(tid)) / 100e-6;
    EXPECT_NEAR(tips, 500e6 / 8.0, 0.05 * 62.5e6) << "thread " << tid;
  }
}

TEST_F(CoreTest, FrequencyScalingSlowsExecution) {
  auto core = make_core(0, 500.0);
  const std::string src = R"(
      ldc  r0, 100
      setfreq r0           # drop to 100 MHz
  loop:
      addi r1, r1, 1
      bu   loop
  )";
  core->load(assemble(src));
  core->start();
  sim.run_until(microseconds(100.0));
  EXPECT_DOUBLE_EQ(core->frequency(), 100.0);
  const double ips =
      static_cast<double>(core->instructions_retired()) / 100e-6;
  EXPECT_NEAR(ips, 100e6 / 4.0, 0.03 * 25e6);
}

TEST_F(CoreTest, SetfreqOutOfRangeTraps) {
  auto core = make_core();
  run(*core, R"(
      ldc r0, 0
      setfreq r0
      texit
  )");
  EXPECT_TRUE(core->trapped());
  EXPECT_EQ(core->trap().kind, TrapKind::kBadOperand);
}

TEST_F(CoreTest, DivideHasLongLatency) {
  // 100 divides back-to-back on one thread take ~32 cycles each vs ~4 for
  // adds.
  auto a = make_core(0, 500.0);
  const char* div_src = R"(
      ldc  r0, 100
      ldc  r1, 7
      ldc  r2, 3
  loop:
      divu r3, r1, r2
      subi r0, r0, 1
      bt   r0, loop
      texit
  )";
  a->load(assemble(div_src));
  a->start();
  sim.run();
  // Each iteration: divu (32-cycle reissue) dominates.
  const double us = to_microseconds(sim.now());
  EXPECT_GT(us, 100 * 32 * 0.002 * 0.8);  // at least ~80 % of the stall model
}

// ------------------------------------------------------------- channels

TEST_F(CoreTest, WordOverLoopbackBetweenCores) {
  auto a = make_core(0);
  auto b = make_core(1);
  LoopbackFabric fabric;
  fabric.attach(*a);
  fabric.attach(*b);

  const std::string src_a = R"(
      getr  r0, 2
      ldc   r1, 1
      ldch  r1, 2        # dest: node 1, chanend 0 -> 0x00010002
      setd  r0, r1
      ldc   r2, 0xbeef
      ldch  r2, 0xcafe   # 0xbeefcafe
      out   r0, r2
      outct r0, 1        # END closes the route
      texit
  )";
  const std::string src_b = R"(
      getr  r0, 2
      in    r1, r0
      chkct r0, 1
      ldc   r2, out
      stw   r1, r2, 0
      texit
  out: .word 0
  )";
  a->load(assemble(src_a));
  b->load(assemble(src_b));
  a->start();
  b->start();
  sim.run_until(milliseconds(1.0));
  ASSERT_FALSE(a->trapped()) << a->trap().message;
  ASSERT_FALSE(b->trapped()) << b->trap().message;
  EXPECT_TRUE(a->finished());
  EXPECT_TRUE(b->finished());
  EXPECT_EQ(b->peek_word(assemble(src_b).symbol("out") * 4), 0xBEEFCAFEu);
}

TEST_F(CoreTest, TokenStreamAndChkct) {
  auto a = make_core(0);
  auto b = make_core(1);
  LoopbackFabric fabric;
  fabric.attach(*a);
  fabric.attach(*b);

  a->load(assemble(R"(
      getr  r0, 2
      ldc   r1, 1
      ldch  r1, 2
      setd  r0, r1
      ldc   r2, 3        # three tokens: 3, 2, 1
  tloop:
      outt  r0, r2
      subi  r2, r2, 1
      bt    r2, tloop
      outct r0, 1
      texit
  )"));
  const std::string src_b = R"(
      getr  r0, 2
      int   r1, r0
      int   r2, r0
      int   r3, r0
      chkct r0, 1
      ldc   r4, out
      stw   r1, r4, 0
      stw   r2, r4, 1
      stw   r3, r4, 2
      texit
  out: .space 3
  )";
  b->load(assemble(src_b));
  a->start();
  b->start();
  sim.run_until(milliseconds(1.0));
  ASSERT_TRUE(a->finished() && b->finished());
  const std::uint32_t base = assemble(src_b).symbol("out") * 4;
  EXPECT_EQ(b->peek_word(base), 3u);
  EXPECT_EQ(b->peek_word(base + 4), 2u);
  EXPECT_EQ(b->peek_word(base + 8), 1u);
}

TEST_F(CoreTest, ChkctOnDataTokenTraps) {
  auto a = make_core(0);
  auto b = make_core(1);
  LoopbackFabric fabric;
  fabric.attach(*a);
  fabric.attach(*b);
  a->load(assemble(R"(
      getr  r0, 2
      ldc   r1, 1
      ldch  r1, 2
      setd  r0, r1
      ldc   r2, 5
      outt  r0, r2       # data where B expects END
      texit
  )"));
  b->load(assemble(R"(
      getr  r0, 2
      chkct r0, 1
      texit
  )"));
  a->start();
  b->start();
  sim.run_until(milliseconds(1.0));
  EXPECT_TRUE(b->trapped());
  EXPECT_EQ(b->trap().kind, TrapKind::kProtocol);
}

TEST_F(CoreTest, SelfLoopbackOnSameCore) {
  // Core-local communication: both chanends on one core (§V.D "prefer
  // core-local communication").
  auto a = make_core(0);
  LoopbackFabric fabric;
  fabric.attach(*a);
  const std::string src = R"(
      getr  r0, 2          # chanend 0: id 0x0002
      getr  r1, 2          # chanend 1: id 0x0102
      setd  r0, r1         # 0 -> 1
      ldc   r2, 777
      out   r0, r2
      outct r0, 1
      in    r3, r1
      chkct r1, 1
      ldc   r4, out
      stw   r3, r4, 0
      texit
  out: .word 0
  )";
  run(*a, src);
  ASSERT_FALSE(a->trapped()) << a->trap().message;
  ASSERT_TRUE(a->finished());
  EXPECT_EQ(a->peek_word(assemble(src).symbol("out") * 4), 777u);
}

// ------------------------------------------------------- DSP extensions

TEST_F(CoreTest, MultiplyAccumulate) {
  auto core = make_core();
  const std::string src = R"(
      ldc   r0, 0          # accumulator
      ldc   r1, 7
      ldc   r2, 6
      macc  r0, r1, r2     # 42
      ldc   r1, 100
      ldc   r2, 3
      macc  r0, r1, r2     # 342
      ldc   r3, out
      stw   r0, r3, 0
      texit
  out: .word 0
  )";
  run(*core, src);
  ASSERT_TRUE(core->finished());
  EXPECT_EQ(core->peek_word(assemble(src).symbol("out") * 4), 342u);
}

TEST_F(CoreTest, LongMultiplyHigh) {
  auto core = make_core();
  const std::string src = R"(
      ldc   r1, 0x8000
      ldch  r1, 0          # 0x80000000
      ldc   r2, 4
      lmulh r0, r1, r2     # high word of 0x200000000 = 2
      mul   r3, r1, r2     # low word = 0
      ldc   r4, out
      stw   r0, r4, 0
      stw   r3, r4, 1
      texit
  out: .space 2
  )";
  run(*core, src);
  ASSERT_TRUE(core->finished());
  const std::uint32_t base = assemble(src).symbol("out") * 4;
  EXPECT_EQ(core->peek_word(base), 2u);
  EXPECT_EQ(core->peek_word(base + 4), 0u);
}

TEST_F(CoreTest, ArithmeticShiftRightImmediate) {
  auto core = make_core();
  const std::string src = R"(
      ldc   r1, 0
      subi  r1, r1, 256    # -256
      ashri r0, r1, 4      # -16
      ldc   r2, 256
      ashri r3, r2, 4      # 16
      ldc   r4, out
      stw   r0, r4, 0
      stw   r3, r4, 1
      texit
  out: .space 2
  )";
  run(*core, src);
  ASSERT_TRUE(core->finished());
  const std::uint32_t base = assemble(src).symbol("out") * 4;
  EXPECT_EQ(static_cast<std::int32_t>(core->peek_word(base)), -16);
  EXPECT_EQ(core->peek_word(base + 4), 16u);
}

// --------------------------------------------------------- system & I/O

TEST_F(CoreTest, ConsoleOutput) {
  auto core = make_core();
  run(*core, R"(
      ldc    r0, 42
      printi r0
      ldc    r1, 10
      printc r1
      texit
  )");
  EXPECT_EQ(core->console(), "42\n");
}

TEST_F(CoreTest, PowerReadHook) {
  auto core = make_core();
  core->set_power_read_hook([](int ch) { return 100 + ch; });
  const std::string src = R"(
      getpwr r0, 0
      getpwr r1, 3
      ldc    r2, out
      stw    r0, r2, 0
      stw    r1, r2, 1
      texit
  out: .space 2
  )";
  run(*core, src);
  const std::uint32_t base = assemble(src).symbol("out") * 4;
  EXPECT_EQ(core->peek_word(base), 100u);
  EXPECT_EQ(core->peek_word(base + 4), 103u);
}

// ------------------------------------------------------- timed port I/O

TEST_F(CoreTest, PortDriveAndSample) {
  auto core = make_core();
  core->set_port_input(1, true);
  const std::string src = R"(
      getr  r0, 6          # port 0 (output)
      getr  r1, 6          # port 1 (we read its input pin)
      ldc   r2, 1
      outp  r0, r2
      inp   r3, r1
      ldc   r4, out
      stw   r3, r4, 0
      texit
  out: .word 0
  )";
  run(*core, src);
  ASSERT_FALSE(core->trapped()) << core->trap().message;
  EXPECT_EQ(core->peek_word(assemble(src).symbol("out") * 4), 1u);
  EXPECT_EQ(core->port_output_level(0), 1);
  // Waveform: initial 0 at allocation, then the rise.
  ASSERT_EQ(core->port_waveform(0).size(), 2u);
  EXPECT_EQ(core->port_waveform(0)[1].level, 1);
}

TEST_F(CoreTest, TimedPortOutputLandsOnExactTicks) {
  auto core = make_core();
  run(*core, R"(
      getr  r0, 6
      gettime r9
      addi  r9, r9, 100    # edge 1 at +100 ticks
      ldc   r1, 1
      outpt r0, r1, r9
      addi  r9, r9, 250    # edge 2 exactly 250 ticks later
      ldc   r1, 0
      outpt r0, r1, r9
      texit
  )");
  ASSERT_TRUE(core->finished());
  const auto& wave = core->port_waveform(0);
  ASSERT_EQ(wave.size(), 3u);  // allocation + two edges
  // 250 reference ticks = 2.5 us between the edges, exactly.
  EXPECT_EQ(wave[2].time - wave[1].time, 250 * 10'000);
}

TEST_F(CoreTest, PortOnUnallocatedResourceTraps) {
  auto core = make_core();
  run(*core, R"(
      ldc  r0, 6           # a port-typed id that was never allocated
      ldc  r1, 1
      outp r0, r1
      texit
  )");
  EXPECT_TRUE(core->trapped());
  EXPECT_EQ(core->trap().kind, TrapKind::kBadResource);
}

TEST_F(CoreTest, PortsExhaustAndRecycle) {
  auto core = make_core();
  const std::string src = R"(
      ldc   r2, 0
  loop:
      getr  r1, 6
      bf    r1, done
      addi  r2, r2, 1
      bu    loop
  done:
      ldc   r3, out
      stw   r2, r3, 0
      texit
  out: .word 0
  )";
  run(*core, src);
  ASSERT_TRUE(core->finished());
  EXPECT_EQ(core->peek_word(assemble(src).symbol("out") * 4), 8u);
}

// ------------------------------------------------------- event select

TEST_F(CoreTest, Sel2ReturnsWhicheverChanendIsReadable) {
  // A merge: two senders on cores 1 and 2 fire at different times; the
  // receiver on core 0 services whichever input is ready (SEL2).
  auto rx = make_core(0);
  auto tx1 = make_core(1);
  auto tx2 = make_core(2);
  LoopbackFabric fabric;
  fabric.attach(*rx);
  fabric.attach(*tx1);
  fabric.attach(*tx2);

  auto sender = [](int delay_ticks, int chanend_idx, int value) {
    return strprintf(R"(
        getr  r0, 2
        ldc   r1, 0
        ldch  r1, 0x%02x02
        setd  r0, r1
        gettime r2
        ldc   r3, %d
        add   r2, r2, r3
        timewait r2
        ldc   r4, %d
        out   r0, r4
        outct r0, 1
        texit
    )", chanend_idx, delay_ticks, value);
  };
  tx1->load(assemble(sender(500, 0, 111)));   // 5 us -> chanend 0
  tx2->load(assemble(sender(200, 1, 222)));   // 2 us -> chanend 1 (first)
  const std::string rx_src = R"(
      getr  r0, 2          # chanend 0
      getr  r1, 2          # chanend 1
      sel2  r2, r0, r1     # blocks until one of them has data
      in    r3, r2
      chkct r2, 1
      sel2  r4, r0, r1
      in    r5, r4
      chkct r4, 1
      ldc   r6, out
      stw   r3, r6, 0      # first arrival
      stw   r5, r6, 1      # second arrival
      texit
  out: .space 2
  )";
  rx->load(assemble(rx_src));
  rx->start();
  tx1->start();
  tx2->start();
  sim.run_until(milliseconds(1.0));
  ASSERT_FALSE(rx->trapped()) << rx->trap().message;
  ASSERT_TRUE(rx->finished());
  const std::uint32_t base = assemble(rx_src).symbol("out") * 4;
  EXPECT_EQ(rx->peek_word(base), 222u);      // chanend 1 fired first
  EXPECT_EQ(rx->peek_word(base + 4), 111u);  // then chanend 0
}

TEST_F(CoreTest, Sel2WithDataAlreadyPresentDoesNotBlock) {
  auto core = make_core(0);
  LoopbackFabric fabric;
  fabric.attach(*core);
  const std::string src = R"(
      getr  r0, 2
      getr  r1, 2
      setd  r0, r1         # self-loop 0 -> 1
      ldc   r2, 9
      out   r0, r2
      outct r0, 1
      sel2  r3, r1, r0     # chanend 1 already has the word
      in    r4, r3
      chkct r3, 1
      ldc   r5, out
      stw   r4, r5, 0
      texit
  out: .word 0
  )";
  run(*core, src);
  ASSERT_FALSE(core->trapped()) << core->trap().message;
  ASSERT_TRUE(core->finished());
  EXPECT_EQ(core->peek_word(assemble(src).symbol("out") * 4), 9u);
}

// --------------------------------------------------------------- tracing

TEST_F(CoreTest, TraceRecordsEveryRetire) {
  auto core = make_core();
  TraceBuffer buffer;
  core->set_trace_sink(buffer.sink());
  run(*core, R"(
      ldc  r0, 3
  loop:
      subi r0, r0, 1
      bt   r0, loop
      texit
  )");
  ASSERT_TRUE(core->finished());
  EXPECT_EQ(buffer.count(), core->instructions_retired());
  // ldc + 3x(subi, bt) + texit = 8 retires.
  EXPECT_EQ(buffer.count(), 8u);
}

TEST_F(CoreTest, TraceLinesContainDisassembly) {
  auto core = make_core();
  TraceBuffer buffer;
  core->set_trace_sink(buffer.sink());
  run(*core, "ldc r5, 77\ntexit");
  ASSERT_GE(buffer.lines().size(), 1u);
  EXPECT_NE(buffer.lines()[0].find("ldc r5, 77"), std::string::npos);
  EXPECT_NE(buffer.lines()[0].find("t0@0000"), std::string::npos);
  EXPECT_NE(buffer.lines()[1].find("texit"), std::string::npos);
}

TEST_F(CoreTest, TraceDoesNotRecordBlockedAttempts) {
  // A thread blocked on IN re-executes when woken; only the successful
  // retire is traced.
  auto a = make_core(0);
  LoopbackFabric fabric;
  fabric.attach(*a);
  TraceBuffer buffer;
  a->set_trace_sink(buffer.sink());
  run(*a, R"(
      getr  r0, 2          # chanend 0
      getr  r1, 2          # chanend 1
      setd  r0, r1
      getr  r4, 3
      getst r5, r4
      tinitpc r5, sender
      tsetr r5, r0, 0      # sender's r0 = chanend 0
      msync r4
      in    r3, r1         # blocks until the slave sends
      chkct r1, 1
      tjoin r4
      texit
  sender:
      gettime r2
      ldc   r3, 500        # 5 us delay so the IN definitely blocks
      add   r2, r2, r3
      timewait r2
      ldc   r2, 5
      out   r0, r2
      outct r0, 1
      texit
  )");
  ASSERT_FALSE(a->trapped()) << a->trap().message;
  ASSERT_TRUE(a->finished());
  EXPECT_EQ(buffer.count(), a->instructions_retired());
  // Exactly one "in r3, r1" record despite the blocked first attempt.
  int in_records = 0;
  for (const std::string& line : buffer.lines()) {
    in_records += line.find("in r3, r1") != std::string::npos;
  }
  EXPECT_EQ(in_records, 1);
}

// --------------------------------------------------------------- energy

TEST_F(CoreTest, IdleCoreBurnsBaselinePower) {
  auto core = make_core(0, 500.0);
  // Not started: baseline only.
  sim.run_until(microseconds(100.0));
  core->settle_energy(sim.now());
  const Joules expected = milliwatts(113.0) * 100e-6;
  EXPECT_NEAR(ledger.total(EnergyAccount::kCoreBaseline), expected,
              0.01 * expected);
  EXPECT_NEAR(ledger.total(EnergyAccount::kCoreInstructions), 0.0, 1e-12);
}

TEST_F(CoreTest, FullyLoadedCoreSitsOnEquationOneLine) {
  auto core = make_core(0, 500.0);
  // Four spinning threads: the paper's heavy-load operating point.
  const std::string src = R"(
      getr  r4, 3
      getst r5, r4
      tinitpc r5, spin
      getst r5, r4
      tinitpc r5, spin
      getst r5, r4
      tinitpc r5, spin
      msync r4
  spin:
      add   r0, r0, r1
      bu    spin
  )";
  core->load(assemble(src));
  core->start();
  sim.run_until(microseconds(200.0));
  core->settle_energy(sim.now());
  const Joules total = ledger.total(EnergyAccount::kCoreBaseline) +
                       ledger.total(EnergyAccount::kCoreInstructions);
  const double avg_mw = to_milliwatts(total / 200e-6);
  // Eq. (1): 46 + 0.30*500 = 196 mW.  The add/bu mix runs slightly below
  // the average-mix line (branch weight < 1).
  EXPECT_GT(avg_mw, 180.0);
  EXPECT_LT(avg_mw, 200.0);
}

TEST_F(CoreTest, DetailedEnergyModelSeparatesDataPatterns) {
  // The [4]-style refinement: the same loop over all-ones operands costs
  // more energy than over all-zero operands.
  auto run_with_data = [&](std::uint32_t pattern) {
    Simulator local_sim;
    EnergyLedger local_ledger;
    Core::Config cfg;
    cfg.detailed_energy.enabled = true;
    Core core(local_sim, local_ledger, cfg);
    core.load(assemble(strprintf(R"(
        ldc  r1, 0x%x
        ldch r1, 0x%x
        or   r2, r1, r1
    loop:
        and  r3, r1, r2
        xor  r4, r1, r2
        bu   loop
    )", pattern >> 16, pattern & 0xFFFF)));
    core.start();
    local_sim.run_until(microseconds(100.0));
    core.settle_energy(local_sim.now());
    return local_ledger.grand_total();
  };
  const Joules zeros = run_with_data(0x00000000);
  const Joules ones = run_with_data(0xFFFFFFFF);
  EXPECT_GT(ones, 1.02 * zeros);
  // The effect stays second-order: within ~10 % of each other.
  EXPECT_LT(ones, 1.10 * zeros);
}

TEST_F(CoreTest, DetailedEnergyModelChargesClassSwitching) {
  // A monotone instruction stream is cheaper than an alternating one with
  // the same class mix average... here: same instructions, different
  // interleaving.
  auto run_interleaved = [&](bool alternate) {
    Simulator local_sim;
    EnergyLedger local_ledger;
    Core::Config cfg;
    cfg.detailed_energy.enabled = true;
    Core core(local_sim, local_ledger, cfg);
    // Both variants execute 50 % alu and 50 % memory instructions.
    const char* body = alternate ? R"(
    loop:
        add  r1, r2, r3
        ldw  r4, r10, 0
        add  r5, r2, r3
        ldw  r6, r10, 0
        bu   loop
    )"
                                 : R"(
    loop:
        add  r1, r2, r3
        add  r5, r2, r3
        ldw  r4, r10, 0
        ldw  r6, r10, 0
        bu   loop
    )";
    core.load(assemble(std::string("    ldc r10, 128\n") + body));
    core.start();
    local_sim.run_until(microseconds(100.0));
    core.settle_energy(local_sim.now());
    return local_ledger.grand_total();
  };
  const Joules grouped = run_interleaved(false);
  const Joules alternating = run_interleaved(true);
  EXPECT_GT(alternating, grouped);
}

TEST_F(CoreTest, LowerFrequencyUsesLessEnergyPerSecond) {
  auto fast = make_core(0, 500.0);
  EnergyLedger slow_ledger;
  Core::Config cfg;
  cfg.node_id = 1;
  cfg.frequency_mhz = 100.0;
  auto slow = std::make_unique<Core>(sim, slow_ledger, cfg);
  const Image img = assemble("loop: addi r0, r0, 1\n bu loop");
  fast->load(img);
  slow->load(img);
  fast->start();
  slow->start();
  sim.run_until(microseconds(100.0));
  fast->settle_energy(sim.now());
  slow->settle_energy(sim.now());
  EXPECT_GT(ledger.grand_total(), slow_ledger.grand_total());
}

}  // namespace
}  // namespace swallow
