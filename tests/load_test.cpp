// Production-traffic subsystem tests (ROADMAP item 3, src/load/):
// engine-independent load reports, open-loop arrival determinism,
// mid-run snapshot/restore identity, ingress backpressure (bounded FIFOs
// reject loudly, the generator waits instead of dropping), fault-plan
// runs that degrade but stay correct, and synthetic traffic patterns.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "analysis/netstat.h"
#include "api/nos.h"
#include "board/system.h"
#include "common/error.h"
#include "common/rng.h"
#include "fault/fault.h"
#include "load/arrival.h"
#include "load/load.h"
#include "load/synthetic.h"
#include "sim/simulator.h"
#include "snap/machine.h"
#include "snap/snapfile.h"

namespace swallow {
namespace {

constexpr TimePs kStep = 50'000'000;        // 50 us chop
constexpr TimePs kMaxTime = 20'000'000'000;  // 20 ms ceiling

SystemConfig grid_config(int jobs, bool reliable = false) {
  SystemConfig cfg;
  cfg.slices_x = 2;
  cfg.slices_y = 2;
  cfg.jobs = jobs;
  cfg.ethernet_bridges = 2;
  cfg.reliable_links = reliable;
  return cfg;
}

LoadConfig farm_config(std::uint64_t requests = 400) {
  LoadConfig lcfg;
  lcfg.workload = LoadWorkload::kFarm;
  lcfg.requests = requests;
  lcfg.concurrency = 8;
  lcfg.service_work = 100;
  lcfg.seed = 5;
  return lcfg;
}

// Run a full load scenario on one engine configuration and return the
// deterministic report block.
std::string run_report(const SystemConfig& cfg, const LoadConfig& lcfg,
                       const FaultPlan* plan = nullptr) {
  Simulator sim;
  SwallowSystem sys(sim, cfg);
  std::unique_ptr<FaultInjector> injector;
  if (plan != nullptr) {
    injector = std::make_unique<FaultInjector>(sys, *plan);
    injector->arm();
  }
  LoadGenerator gen(sys, lcfg);
  gen.deploy();
  sys.start_sampling();
  gen.arm();
  gen.run_to_completion(kStep, kMaxTime);
  EXPECT_TRUE(gen.done());
  EXPECT_EQ(gen.mismatches(), 0u);
  return gen.report_json();
}

// ----- Engine independence -----

// The keystone: the same seeded load scenario renders a byte-identical
// report on the sequential engine and on every parallel shard count.
// Every stochastic draw comes from per-bridge seeded streams and every
// injection runs in the owning bridge's event domain, so the schedule
// cannot depend on host thread interleaving.
TEST(LoadDeterminism, ReportByteIdenticalAcrossEngines) {
  const LoadConfig lcfg = farm_config();
  const std::string seq = run_report(grid_config(0), lcfg);
  for (int jobs : {1, 2, 4}) {
    EXPECT_EQ(run_report(grid_config(jobs), lcfg), seq)
        << "jobs=" << jobs << " diverged from the sequential engine";
  }
}

TEST(LoadDeterminism, ScatterAndPipelineAlsoEngineIndependent) {
  LoadConfig scatter = farm_config(120);
  scatter.workload = LoadWorkload::kScatterGather;
  scatter.scatter_fanout = 3;
  scatter.concurrency = 4;
  EXPECT_EQ(run_report(grid_config(0), scatter),
            run_report(grid_config(2), scatter));

  LoadConfig pipe = farm_config(120);
  pipe.workload = LoadWorkload::kPipeline;
  pipe.pipeline_stages = 4;
  pipe.concurrency = 4;
  pipe.service_work = 160;
  EXPECT_EQ(run_report(grid_config(0), pipe),
            run_report(grid_config(2), pipe));
}

// Open loop: the seeded arrival process fully determines the injection
// schedule — same seed reproduces the report, a different seed shifts
// the arrival times (and with them the measured latency distribution).
TEST(LoadDeterminism, OpenLoopArrivalsAreSeeded) {
  LoadConfig lcfg = farm_config(200);
  lcfg.closed_loop = false;
  lcfg.arrivals.kind = ArrivalKind::kPoisson;
  lcfg.arrivals.rate_rps = 2e6;
  const std::string a = run_report(grid_config(0), lcfg);
  const std::string b = run_report(grid_config(0), lcfg);
  EXPECT_EQ(a, b);
  lcfg.seed = 6;
  EXPECT_NE(run_report(grid_config(0), lcfg), a);
}

// ----- Snapshot / restore mid-run -----

// Snapshot a run mid-flight (outstanding requests on the wire, pending
// arrivals, partial histograms), restore into a fresh machine and run to
// completion: the final report must be byte-identical to an
// uninterrupted run with the same chop grid.
TEST(LoadSnapshot, MidRunRestoreMatchesUninterrupted) {
  const LoadConfig lcfg = farm_config();
  const SystemConfig cfg = grid_config(2);

  const std::string uninterrupted = run_report(cfg, lcfg);

  // Interrupted leg: stop at a chop boundary well inside the run.
  SnapshotFile mid;
  {
    Simulator sim;
    SwallowSystem sys(sim, cfg);
    LoadGenerator gen(sys, lcfg);
    gen.deploy();
    sys.start_sampling();
    gen.arm();
    const TimePs stop = 300'000'000;  // 300 us, a multiple of kStep
    while (sys.now() < stop) sys.run_until(sys.now() + kStep);
    EXPECT_FALSE(gen.done()) << "snapshot point must land mid-run";
    mid = save_machine(SnapTargets{&sys, nullptr, nullptr, &gen});
  }

  // Resumed leg.
  {
    Simulator sim;
    SwallowSystem sys(sim, cfg);
    LoadGenerator gen(sys, lcfg);
    gen.deploy(/*for_restore=*/true);
    restore_machine(mid, SnapTargets{&sys, nullptr, nullptr, &gen});
    gen.run_to_completion(kStep, kMaxTime);
    EXPECT_TRUE(gen.done());
    EXPECT_EQ(gen.report_json(), uninterrupted);
  }
}

// A snapshot from a load run refuses to restore into a machine whose
// load configuration differs — the config hash catches it.
TEST(LoadSnapshot, RefusesMismatchedLoadConfig) {
  const SystemConfig cfg = grid_config(0);
  const LoadConfig lcfg = farm_config();
  SnapshotFile mid;
  {
    Simulator sim;
    SwallowSystem sys(sim, cfg);
    LoadGenerator gen(sys, lcfg);
    gen.deploy();
    sys.start_sampling();
    gen.arm();
    sys.run_until(kStep);
    mid = save_machine(SnapTargets{&sys, nullptr, nullptr, &gen});
  }
  Simulator sim;
  SwallowSystem sys(sim, cfg);
  LoadConfig other = lcfg;
  other.seed = 99;
  LoadGenerator gen(sys, other);
  gen.deploy(/*for_restore=*/true);
  EXPECT_THROW(
      restore_machine(mid, SnapTargets{&sys, nullptr, nullptr, &gen}),
      SnapError);
}

// ----- Ingress backpressure (satellite 1) -----

// A bounded bridge ingress FIFO pushes back instead of dropping: the
// plain host_send fails loudly, host_try_send returns false and counts
// the reject, and the counters surface through the netstat collector.
TEST(LoadBackpressure, BoundedIngressRejectsLoudly) {
  Simulator sim;
  SystemConfig cfg;
  cfg.ethernet_bridges = 1;
  SwallowSystem sys(sim, cfg);
  NosNode node(sys.core(0, 0, Layer::kVertical));
  node.add_service("idle", "    ret\n");
  node.start();

  EthernetBridge& br = sys.bridge(0);
  const auto wire = NosNode::encode_request(br.chanend_id(), 0, 1);
  br.set_ingress_capacity(EthernetBridge::packet_tokens(wire.size()));

  // One packet fits exactly; a second cannot until the wire drains.
  EXPECT_TRUE(br.host_try_send(node.request_chanend(), wire));
  EXPECT_FALSE(br.ingress_can_accept(wire.size()));
  EXPECT_FALSE(br.host_try_send(node.request_chanend(), wire));
  EXPECT_THROW(br.host_send(node.request_chanend(), wire), Error);
  EXPECT_EQ(br.ingress_rejects(), 2u);
  EXPECT_EQ(br.ingress_peak_tokens(),
            EthernetBridge::packet_tokens(wire.size()));

  const NetworkStats stats = collect_network_stats(sys);
  EXPECT_EQ(stats.bridge.bridges, 1);
  EXPECT_EQ(stats.bridge.ingress_rejects, 2u);

  // After the FIFO drains onto the wire the same send goes through.
  sim.run_until(milliseconds(1.0));
  EXPECT_TRUE(br.host_try_send(node.request_chanend(), wire));
}

// The generator never trips the reject path: at a minimal ingress window
// it defers sends (counting waits) and retries on space notifications,
// so every request still completes and nothing is dropped.
TEST(LoadBackpressure, GeneratorWaitsInsteadOfDropping) {
  LoadConfig lcfg = farm_config(200);
  lcfg.ingress_capacity = EthernetBridge::packet_tokens(12);
  Simulator sim;
  SwallowSystem sys(sim, grid_config(0));
  LoadGenerator gen(sys, lcfg);
  gen.deploy();
  sys.start_sampling();
  gen.arm();
  gen.run_to_completion(kStep, kMaxTime);
  EXPECT_TRUE(gen.done());
  EXPECT_EQ(gen.completed(), lcfg.requests);
  EXPECT_EQ(gen.mismatches(), 0u);
  EXPECT_GT(gen.backpressure_waits(), 0u);
  const NetworkStats stats = collect_network_stats(sys);
  EXPECT_EQ(stats.bridge.ingress_rejects, 0u);
  EXPECT_LE(stats.bridge.ingress_peak_tokens, lcfg.ingress_capacity);
}

// ----- Fault composition -----

// Under a seeded FaultPlan on reliable links the percentiles degrade
// (retransmissions stretch latencies) but every reply still verifies,
// and the whole degraded run stays engine-independent.
TEST(LoadFaults, DegradedButCorrectAndEngineIndependent) {
  const LoadConfig lcfg = farm_config(200);
  FaultPlan plan;
  plan.seed = 3;
  plan.corrupt_link(0, -1, 0.02);
  const std::string seq =
      run_report(grid_config(0, /*reliable=*/true), lcfg, &plan);
  EXPECT_EQ(run_report(grid_config(2, /*reliable=*/true), lcfg, &plan), seq);
  EXPECT_NE(seq.find("\"mismatches\":0"), std::string::npos);
}

// ----- Arrival processes -----

TEST(ArrivalProcess, SeededGapsReproduceAndMatchTheMeanRate) {
  ArrivalConfig acfg;
  acfg.kind = ArrivalKind::kPoisson;
  acfg.rate_rps = 1e6;
  Rng a(42), b(42);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const TimePs ga = arrival_gap(acfg, a);
    ASSERT_EQ(ga, arrival_gap(acfg, b));
    ASSERT_GE(ga, 1);
    sum += static_cast<double>(ga);
  }
  // Mean inter-arrival of a 1M req/s Poisson process is 1 us = 1e6 ps.
  EXPECT_NEAR(sum / 20000, 1e6, 0.05e6);
  EXPECT_EQ(arrival_batch(acfg), 1);

  acfg.kind = ArrivalKind::kBurst;
  acfg.burst_size = 16;
  EXPECT_EQ(arrival_batch(acfg), 16);
  Rng c(7);
  // Burst arrivals are a fixed comb: every gap covers one whole batch.
  const TimePs g = arrival_gap(acfg, c);
  EXPECT_EQ(g, arrival_gap(acfg, c));
}

// ----- Synthetic switch-level traffic -----

TEST(SyntheticLoad, PatternsRunDeterministicallyAndDeliver) {
  for (const TrafficPattern p :
       {TrafficPattern::kUniformRandom, TrafficPattern::kHotspot,
        TrafficPattern::kTranspose, TrafficPattern::kBitReversal}) {
    SyntheticConfig scfg;
    scfg.pattern = p;
    scfg.rate_pps = 500000;
    scfg.seed = 9;
    std::string first;
    for (int rep = 0; rep < 2; ++rep) {
      Simulator sim;
      SystemConfig cfg;  // one slice, 16 cores
      SwallowSystem sys(sim, cfg);
      SyntheticTraffic traffic(sys, scfg);
      traffic.deploy();
      traffic.arm(microseconds(50.0));
      sys.run_until(microseconds(200.0));
      EXPECT_TRUE(traffic.window_closed());
      EXPECT_GT(traffic.delivered(), 0u)
          << "pattern " << to_string(p) << " delivered nothing";
      EXPECT_GE(traffic.offered(),
                traffic.delivered() + traffic.dropped());
      if (rep == 0) {
        first = traffic.report_json();
      } else {
        EXPECT_EQ(traffic.report_json(), first)
            << "pattern " << to_string(p) << " is not deterministic";
      }
    }
  }
}

}  // namespace
}  // namespace swallow
