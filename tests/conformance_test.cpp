// Table-driven ISA conformance: one expectation per instruction semantics
// (result registers checked after a tiny program), plus a table of trap
// behaviours.  Complements the scenario tests in arch_test.cpp with
// breadth: every ALU/shift/immediate/memory instruction is pinned to its
// exact semantics, including edge cases (shift >= 32, signed boundaries,
// wrap-around).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/assembler.h"
#include "arch/core.h"
#include "arch/trap.h"
#include "common/strings.h"
#include "sim/simulator.h"

namespace swallow {
namespace {

struct SemanticsCase {
  const char* name;
  const char* body;        // program body; must leave the result in r0
  std::uint32_t expected;  // value of r0 stored at `out`
};

class Semantics : public ::testing::TestWithParam<SemanticsCase> {};

TEST_P(Semantics, ResultMatches) {
  const SemanticsCase& c = GetParam();
  Simulator sim;
  EnergyLedger ledger;
  Core::Config cfg;
  Core core(sim, ledger, cfg);
  const std::string src = std::string(c.body) +
                          "\n    ldc r11, out\n    stw r0, r11, 0\n    texit\n"
                          "out: .word 0\n";
  core.load(assemble(src));
  core.start();
  sim.run_until(milliseconds(5.0));
  ASSERT_FALSE(core.trapped()) << c.name << ": " << core.trap().message;
  ASSERT_TRUE(core.finished()) << c.name;
  EXPECT_EQ(core.peek_word(assemble(src).symbol("out") * 4), c.expected)
      << c.name;
}

const SemanticsCase kSemantics[] = {
    // ---- add/sub with wrap-around ----
    {"add", "    ldc r1, 30\n    ldc r2, 12\n    add r0, r1, r2", 42},
    {"add_wraps", "    ldc r1, 0xffff\n    ldch r1, 0xffff\n    ldc r2, 2\n"
                  "    add r0, r1, r2", 1},
    {"sub", "    ldc r1, 30\n    ldc r2, 12\n    sub r0, r1, r2", 18},
    {"sub_underflows", "    ldc r1, 0\n    ldc r2, 1\n    sub r0, r1, r2",
     0xFFFFFFFFu},
    {"addi_negative", "    ldc r1, 10\n    addi r0, r1, -3", 7},
    {"subi", "    ldc r1, 10\n    subi r0, r1, 4", 6},
    // ---- logic ----
    {"and", "    ldc r1, 0xff0f\n    ldc r2, 0x0ff0\n    and r0, r1, r2",
     0x0F00},
    {"or", "    ldc r1, 0xf000\n    ldc r2, 0x000f\n    or r0, r1, r2",
     0xF00F},
    {"xor", "    ldc r1, 0xffff\n    ldc r2, 0x0f0f\n    xor r0, r1, r2",
     0xF0F0},
    {"not", "    ldc r1, 0\n    not r0, r1", 0xFFFFFFFFu},
    {"neg", "    ldc r1, 5\n    neg r0, r1", 0xFFFFFFFBu},
    {"mkmsk_8", "    ldc r1, 8\n    mkmsk r0, r1", 0xFF},
    {"mkmsk_32", "    ldc r1, 32\n    mkmsk r0, r1", 0xFFFFFFFFu},
    {"mkmsk_0", "    ldc r1, 0\n    mkmsk r0, r1", 0},
    // ---- comparisons ----
    {"eq_true", "    ldc r1, 9\n    ldc r2, 9\n    eq r0, r1, r2", 1},
    {"eq_false", "    ldc r1, 9\n    ldc r2, 8\n    eq r0, r1, r2", 0},
    {"eqi_true", "    ldc r1, 7\n    eqi r0, r1, 7", 1},
    {"lss_signed", "    ldc r1, 0\n    subi r1, r1, 1\n    ldc r2, 0\n"
                   "    lss r0, r1, r2", 1},  // -1 < 0 signed
    {"lsu_unsigned", "    ldc r1, 0\n    subi r1, r1, 1\n    ldc r2, 0\n"
                     "    lsu r0, r1, r2", 0},  // 0xffffffff not < 0
    // ---- multiply / divide ----
    {"mul", "    ldc r1, 1000\n    ldc r2, 1000\n    mul r0, r1, r2",
     1000000},
    {"mul_wraps", "    ldc r1, 1\n    ldch r1, 0\n    or r2, r1, r1\n"
                  "    mul r0, r1, r2", 0},  // 2^16 * 2^16 = 2^32 -> 0
    {"macc", "    ldc r0, 5\n    ldc r1, 6\n    ldc r2, 7\n"
             "    macc r0, r1, r2", 47},
    {"lmulh", "    ldc r1, 1\n    ldch r1, 0\n    or r2, r1, r1\n"
              "    lmulh r0, r1, r2", 1},  // high(2^16 * 2^16) = 1
    {"divu", "    ldc r1, 100\n    ldc r2, 7\n    divu r0, r1, r2", 14},
    {"remu", "    ldc r1, 100\n    ldc r2, 7\n    remu r0, r1, r2", 2},
    {"divu_small_by_big", "    ldc r1, 7\n    ldc r2, 100\n"
                          "    divu r0, r1, r2", 0},
    {"divu_by_one", "    ldc r1, 0xffff\n    ldch r1, 0xffff\n    ldc r2, 1\n"
                    "    divu r0, r1, r2", 0xFFFFFFFFu},
    {"divu_max_by_max", "    ldc r1, 0xffff\n    ldch r1, 0xffff\n"
                        "    or r2, r1, r1\n    divu r0, r1, r2", 1},
    {"divu_is_unsigned", "    ldc r1, 0\n    subi r1, r1, 2\n    ldc r2, 2\n"
                         "    divu r0, r1, r2", 0x7FFFFFFFu},  // not -1
    {"remu_by_one", "    ldc r1, 0x1234\n    ldc r2, 1\n    remu r0, r1, r2",
     0},
    {"remu_max_by_max", "    ldc r1, 0xffff\n    ldch r1, 0xffff\n"
                        "    or r2, r1, r1\n    remu r0, r1, r2", 0},
    {"mul_is_modular", "    ldc r1, 0\n    subi r1, r1, 1\n    ldc r2, 2\n"
                       "    mul r0, r1, r2", 0xFFFFFFFEu},
    {"macc_wraps", "    ldc r0, 0xffff\n    ldch r0, 0xffff\n    ldc r1, 2\n"
                   "    ldc r2, 3\n    macc r0, r1, r2", 5},
    {"lmulh_zero", "    ldc r1, 0\n    ldc r2, 0x7fff\n    lmulh r0, r1, r2",
     0},
    {"lmulh_max", "    ldc r1, 0xffff\n    ldch r1, 0xffff\n"
                  "    or r2, r1, r1\n    lmulh r0, r1, r2",
     0xFFFFFFFEu},  // high(2^32-1 squared)
    {"lmulh_is_unsigned", "    ldc r1, 0\n    subi r1, r1, 1\n    ldc r2, 2\n"
                          "    lmulh r0, r1, r2", 1},  // not sign-extended
    // ---- shifts ----
    {"shl", "    ldc r1, 1\n    ldc r2, 31\n    shl r0, r1, r2",
     0x80000000u},
    {"shl_ge32", "    ldc r1, 1\n    ldc r2, 32\n    shl r0, r1, r2", 0},
    {"shr", "    ldc r1, 0x8000\n    ldch r1, 0\n    ldc r2, 31\n"
            "    shr r0, r1, r2", 1},
    {"ashr_sign", "    ldc r1, 0x8000\n    ldch r1, 0\n    ldc r2, 31\n"
                  "    ashr r0, r1, r2", 0xFFFFFFFFu},
    {"shli", "    ldc r1, 3\n    shli r0, r1, 4", 48},
    {"shri", "    ldc r1, 48\n    shri r0, r1, 4", 3},
    {"ashri", "    ldc r1, 0\n    subi r1, r1, 64\n    ashri r0, r1, 3",
     0xFFFFFFF8u},
    // Register-shift amounts come from the full 32-bit register; >= 32
    // flushes the logical shifts to zero and saturates ashr at 31.
    {"shr_ge32", "    ldc r1, 0xffff\n    ldc r2, 33\n    shr r0, r1, r2", 0},
    {"shl_huge_amount", "    ldc r1, 1\n    ldc r2, 0xffff\n"
                        "    ldch r2, 0\n    shl r0, r1, r2", 0},
    {"ashr_ge32_negative", "    ldc r1, 0x8000\n    ldch r1, 0\n"
                           "    ldc r2, 40\n    ashr r0, r1, r2",
     0xFFFFFFFFu},  // clamps to 31: sign fill
    {"ashr_ge32_positive", "    ldc r1, 0x7fff\n    ldch r1, 0xffff\n"
                           "    ldc r2, 40\n    ashr r0, r1, r2", 0},
    // Immediate shift amounts are treated as unsigned 32-bit values after
    // sign extension, so imm >= 32 (including negative encodings) is 0 for
    // the logical shifts and clamps to 31 for the arithmetic one.
    {"shli_32", "    ldc r1, 1\n    shli r0, r1, 32", 0},
    {"shri_32", "    ldc r1, 0xffff\n    shri r0, r1, 32", 0},
    {"shli_negative_imm", "    ldc r1, 1\n    shli r0, r1, -1", 0},
    {"shri_negative_imm", "    ldc r1, 0xffff\n    shri r0, r1, -4", 0},
    {"ashri_ge32_negative", "    ldc r1, 0x8000\n    ldch r1, 0\n"
                            "    ashri r0, r1, 63", 0xFFFFFFFFu},
    {"ashri_negative_imm", "    ldc r1, 0x8000\n    ldch r1, 0\n"
                           "    ashri r0, r1, -2", 0xFFFFFFFFu},
    {"ashri_zero", "    ldc r1, 0x8000\n    ldch r1, 0\n    ashri r0, r1, 0",
     0x80000000u},
    // ---- signed boundaries ----
    {"neg_int_min", "    ldc r1, 0x8000\n    ldch r1, 0\n    neg r0, r1",
     0x80000000u},  // -INT_MIN wraps to itself
    {"lss_int_min_lt_zero", "    ldc r1, 0x8000\n    ldch r1, 0\n"
                            "    ldc r2, 0\n    lss r0, r1, r2", 1},
    {"lss_int_max_vs_min", "    ldc r1, 0x7fff\n    ldch r1, 0xffff\n"
                           "    ldc r2, 0x8000\n    ldch r2, 0\n"
                           "    lss r0, r1, r2", 0},  // INT_MAX > INT_MIN
    {"lsu_int_min_vs_zero", "    ldc r1, 0x8000\n    ldch r1, 0\n"
                            "    ldc r2, 0\n    lsu r0, r1, r2",
     0},  // 0x80000000 unsigned is large
    {"add_int_max_plus_one", "    ldc r1, 0x7fff\n    ldch r1, 0xffff\n"
                             "    ldc r2, 1\n    add r0, r1, r2",
     0x80000000u},
    // ---- constants ----
    {"ldc_max", "    ldc r0, 0xffff", 0xFFFF},
    {"ldch_builds", "    ldc r0, 0xdead\n    ldch r0, 0xbeef", 0xDEADBEEFu},
    // ---- memory round trips ----
    {"stw_ldw", "    ldc r1, buf\n    ldc r2, 0x1234\n    stw r2, r1, 0\n"
                "    ldw r0, r1, 0\n    bu done\nbuf: .word 0\ndone:",
     0x1234},
    {"stb_ldb", "    ldc r1, buf2\n    ldc r2, 0x1ff\n    stb r2, r1, 2\n"
                "    ldb r0, r1, 2\n    bu done2\nbuf2: .word 0\ndone2:",
     0xFF},  // byte store truncates
    {"ldw_offset", "    ldc r1, tab\n    ldw r0, r1, 2\n    bu done3\n"
                   "tab: .word 10, 20, 30\ndone3:", 30},
    // ---- stack ----
    {"stack_roundtrip", "    extsp 2\n    ldc r1, 77\n    stwsp r1, 1\n"
                        "    ldwsp r0, 1", 77},
    {"ldawsp", "    extsp 4\n    ldawsp r0, 3\n    ldawsp r2, 0\n"
               "    sub r0, r0, r2", 12},  // sp + 3 words vs sp
};

INSTANTIATE_TEST_SUITE_P(
    Isa, Semantics, ::testing::ValuesIn(kSemantics),
    [](const ::testing::TestParamInfo<SemanticsCase>& info) {
      return std::string(info.param.name);
    });

// --------------------------------------------------------------- traps

struct TrapCase {
  const char* name;
  const char* source;  // complete program
  TrapKind expected;
};

class Traps : public ::testing::TestWithParam<TrapCase> {};

TEST_P(Traps, HaltsWithExpectedKind) {
  const TrapCase& c = GetParam();
  Simulator sim;
  EnergyLedger ledger;
  Core::Config cfg;
  Core core(sim, ledger, cfg);
  core.load(assemble(c.source));
  core.start();
  sim.run_until(milliseconds(5.0));
  ASSERT_TRUE(core.trapped()) << c.name;
  EXPECT_EQ(core.trap().kind, c.expected)
      << c.name << ": " << core.trap().message;
}

const TrapCase kTraps[] = {
    {"bad_opcode", ".word 0xee000000", TrapKind::kBadOpcode},
    {"bad_register_field", ".word 0x01f00000",  // add r15, r0, r0
     TrapKind::kBadOpcode},
    {"fetch_off_end", "ldc r0, 1", TrapKind::kMemoryBounds},  // falls through
    {"unaligned_word", "ldc r0, 6\n ldw r1, r0, 0",
     TrapKind::kMemoryAlignment},
    {"load_oob", "ldc r0, 0xffff\n ldch r0, 0xfffc\n ldw r1, r0, 0",
     TrapKind::kMemoryBounds},
    {"store_oob", "ldc r0, 0xffff\n ldch r0, 0xfffc\n stw r1, r0, 0",
     TrapKind::kMemoryBounds},
    {"unaligned_store", "ldc r0, 2\n stw r1, r0, 0",
     TrapKind::kMemoryAlignment},
    {"unaligned_wins_over_bounds",  // alignment is checked before bounds
     "ldc r0, 0xffff\n ldch r0, 0xfffe\n ldw r1, r0, 0",
     TrapKind::kMemoryAlignment},
    {"byte_load_oob", "ldc r0, 1\n ldch r0, 0\n ldb r1, r0, 0",
     TrapKind::kMemoryBounds},
    {"byte_addr_wraps", "ldc r0, 0xffff\n ldch r0, 0xffff\n ldb r1, r0, 0",
     TrapKind::kMemoryBounds},  // addr+1 wraps past zero
    {"bau_wild", "ldc r0, 0x7fff\n bau r0", TrapKind::kMemoryBounds},
    {"div_zero", "ldc r0, 1\n ldc r1, 0\n divu r2, r0, r1",
     TrapKind::kBadOperand},
    {"rem_zero", "ldc r0, 1\n ldc r1, 0\n remu r2, r0, r1",
     TrapKind::kBadOperand},
    {"out_unallocated", "ldc r0, 2\n out r0, r1", TrapKind::kBadResource},
    {"in_unallocated", "ldc r0, 2\n in r1, r0", TrapKind::kBadResource},
    {"setd_unallocated", "ldc r0, 2\n setd r0, r1", TrapKind::kBadResource},
    {"getr_bad_type", "getr r0, 9", TrapKind::kBadResource},
    {"freer_garbage", "ldc r0, 0x7777\n freer r0", TrapKind::kBadResource},
    {"getst_not_sync", "ldc r1, 2\n getst r0, r1", TrapKind::kBadResource},
    {"msync_not_master", "getr r0, 3\n ldc r1, 0x103\n msync r1",
     TrapKind::kBadResource},
    {"ssync_not_slave", "ssync", TrapKind::kBadResource},
    {"tsetr_bad_reg", "getr r0, 3\n getst r1, r0\n ldc r2, 0\n"
                      " tsetr r1, r2, 15", TrapKind::kBadOperand},
    {"tinit_running_thread", "getr r0, 3\n ldc r1, 0x0004\n tinitpc r1, 0",
     TrapKind::kBadResource},  // thread 0 is running, not fresh
    {"setfreq_zero", "ldc r0, 0\n setfreq r0", TrapKind::kBadOperand},
    {"setfreq_too_high", "ldc r0, 2000\n setfreq r0", TrapKind::kBadOperand},
};

INSTANTIATE_TEST_SUITE_P(
    Core, Traps, ::testing::ValuesIn(kTraps),
    [](const ::testing::TestParamInfo<TrapCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace swallow
